"""AI-for-science campaign: how much heterogeneity buys, and at what energy.

The motivating workload of the paper's introduction: an ML training
pipeline (ingest → preprocess → featurize → k-fold train → select →
final train).  This example:

1. runs the pipeline on three platforms of growing heterogeneity
   (CPU-only, +GPU, +GPU+FPGA) and reports the speedup ladder, then
2. on the GPU platform, trades makespan for energy with the
   energy-aware scheduler across three alpha settings.

Run:  python examples/ml_discovery_campaign.py
"""

from repro import run_workflow
from repro.analysis.compare import ComparisonTable
from repro.energy.governor import DeepSleepGovernor
from repro.platform import presets
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler
from repro.workflows.generators import ml_pipeline


def heterogeneity_ladder(workflow) -> None:
    platforms = {
        "cpu-only": presets.cpu_cluster(nodes=2, cores_per_node=8),
        "cpu+gpu": presets.hybrid_cluster(nodes=2, cores_per_node=8,
                                          gpus_per_node=2),
        "cpu+gpu+fpga": presets.accelerator_rich_cluster(
            nodes=2, cores_per_node=8, gpus_per_node=2, fpgas_per_node=1),
    }
    table = ComparisonTable("platform")
    base = None
    for label, cluster in platforms.items():
        result = run_workflow(workflow, cluster, scheduler="hdws",
                              seed=7, noise_cv=0.1)
        base = base or result.makespan
        table.set(label, "makespan (s)", result.makespan)
        table.set(label, "speedup", base / result.makespan)
        table.set(label, "energy (J)", result.energy.total_joules)
    print("— heterogeneity ladder —")
    print(table.render())


def energy_tradeoff(workflow) -> None:
    governor = DeepSleepGovernor(threshold_s=1.0)
    table = ComparisonTable("alpha")
    for alpha in (1.0, 0.6, 0.2):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=8,
                                         gpus_per_node=2, dvfs=True)
        result = run_workflow(
            workflow, cluster,
            scheduler=EnergyAwareHeftScheduler(alpha=alpha),
            seed=7, noise_cv=0.1, governor=governor,
        )
        table.set(f"{alpha:.1f}", "makespan (s)", result.makespan)
        table.set(f"{alpha:.1f}", "energy (J)", result.energy.total_joules)
        table.set(f"{alpha:.1f}", "EDP", result.energy.edp)
    print("\n— energy/makespan trade-off (alpha = weight on time) —")
    print(table.render())


def main() -> None:
    workflow = ml_pipeline(n_shards=8, n_folds=5, seed=3)
    print(f"workflow: {workflow.name} — {workflow.n_tasks} tasks "
          f"({workflow.total_work():.0f} Gop total)")
    heterogeneity_ladder(workflow)
    energy_tradeoff(workflow)


if __name__ == "__main__":
    main()
