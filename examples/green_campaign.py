"""Carbon-aware campaign planning: DVFS, idle sleep and temporal shifting.

Three levers cut a campaign's footprint, in order of invasiveness:

1. pack the platform well (a good scheduler shortens the idle tail),
2. trade speed for energy (energy-aware placement + DVFS + deep sleep),
3. *run at the right time of day* (launch when the grid is greenest).

This example runs a LIGO analysis under each lever and prices the result
against a synthetic solar-heavy grid.

Run:  python examples/green_campaign.py
"""

from repro import run_workflow
from repro.energy.carbon import (
    CarbonIntensityTrace,
    best_start_hour,
    carbon_emissions,
    shifting_savings,
)
from repro.energy.governor import AlwaysOnGovernor, DeepSleepGovernor
from repro.platform import presets
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler
from repro.workflows.generators import ligo_inspiral


def main() -> None:
    workflow = ligo_inspiral(size=60, seed=4)
    grid = CarbonIntensityTrace.synthetic_solar()
    print(f"workflow: {workflow.name} — {workflow.n_tasks} tasks")
    print("grid    : synthetic solar (dips ~13:00)\n")

    settings = [
        ("baseline (HEFT, always-on)", "heft", False, AlwaysOnGovernor()),
        ("packed (HDWS, always-on)", "hdws", False, AlwaysOnGovernor()),
        ("green placement (alpha=0.3 + DVFS + sleep)",
         EnergyAwareHeftScheduler(alpha=0.3), True,
         DeepSleepGovernor(threshold_s=0.5)),
    ]

    print(f"{'setting':45s} {'makespan':>9s} {'energy':>9s} "
          f"{'gCO2@9h':>9s} {'gCO2@best':>9s}")
    for label, scheduler, dvfs, governor in settings:
        cluster = presets.hybrid_cluster(nodes=4, dvfs=dvfs)
        result = run_workflow(
            workflow, cluster, scheduler=scheduler, seed=2,
            noise_cv=0.1, governor=governor,
        )
        at_nine = carbon_emissions(result.energy, grid, start_hour=9.0)
        hour, best = best_start_hour(result.energy, grid)
        print(f"{label:45s} {result.makespan:8.1f}s {result.energy.total_joules:8.0f}J "
              f"{at_nine:9.2f} {best:9.2f} (launch {hour:04.1f}h)")

    cluster = presets.hybrid_cluster(nodes=4, dvfs=True)
    result = run_workflow(
        workflow, cluster, scheduler=EnergyAwareHeftScheduler(alpha=0.3),
        seed=2, noise_cv=0.1, governor=DeepSleepGovernor(threshold_s=0.5),
    )
    savings = shifting_savings(result.energy, grid)
    print(f"\ntemporal shifting alone: launch at {savings['best_hour']:.1f}h "
          f"saves {savings['savings_fraction'] * 100:.0f}% of CO2 vs the "
          f"worst launch time.")


if __name__ == "__main__":
    main()
