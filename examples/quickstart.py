"""Quickstart: run one scientific workflow on a workstation.

Generates a Montage mosaicking workflow, runs it on the single-node
CPU+GPU workstation preset with the HDWS orchestrator, and prints the
headline numbers plus an ASCII Gantt chart of what ran where.

Run:  python examples/quickstart.py
"""

from repro import run_workflow
from repro.analysis.gantt import ascii_gantt
from repro.analysis.metrics import speedup
from repro.platform import presets
from repro.workflows.generators import montage


def main() -> None:
    workflow = montage(n_images=12, seed=42)
    cluster = presets.single_node_workstation()

    print(f"workflow: {workflow.name} — {workflow.n_tasks} tasks, "
          f"{workflow.n_edges} data edges")
    print(f"platform: {cluster.describe()}")

    result = run_workflow(workflow, cluster, scheduler="hdws",
                          seed=1, noise_cv=0.1)

    print(f"\nmakespan : {result.makespan:.2f} s (virtual)")
    print(f"speedup  : {speedup(result.makespan, workflow, cluster):.2f}x "
          f"over the best single CPU")
    print(f"energy   : {result.energy.total_joules:.0f} J "
          f"({result.energy.average_power():.0f} W average)")
    print(f"data     : {result.execution.network_mb:.0f} MB network, "
          f"{result.execution.staging_mb:.0f} MB staged from storage")

    print("\nexecution timeline:")
    print(ascii_gantt(result.execution.trace, width=68))


if __name__ == "__main__":
    main()
