"""Fault-tolerant seismic hazard campaign.

Runs CyberShake — long GPU-bound seismogram syntheses, exactly the tasks
with the most to lose per crash — under increasingly hostile fault
injection, comparing recovery policies:

* no protection (the run fails on the first unlucky task),
* plain retry (re-execute from scratch),
* checkpoint/restart (resume from the last checkpoint),
* retry with output archiving (node losses never force re-computation).

Run:  python examples/fault_tolerant_campaign.py
"""

from repro import run_workflow
from repro.analysis.compare import ComparisonTable
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform import presets
from repro.workflows.generators import cybershake


def main() -> None:
    # Scale work up 4x so individual syntheses take seconds — long enough
    # that a mid-task crash hurts and checkpoints have something to save.
    workflow = cybershake(n_variations=12, seed=11).scaled(4.0)
    print(f"workflow: {workflow.name} — {workflow.n_tasks} tasks")

    policies = {
        "none": RecoveryPolicy.none(),
        "retry": RecoveryPolicy.retry(20),
        "checkpoint": RecoveryPolicy.checkpoint(1.0, overhead=0.05, retries=20),
        "replicate-2x": RecoveryPolicy.replicated(2, retries=20),
        "retry+archive": RecoveryPolicy(max_retries=20, archive_outputs=True),
    }

    table = ComparisonTable("policy")
    for rate in (0.0, 0.05, 0.15):
        fm = FaultModel(task_fault_rate=rate, device_mtbf=None)
        for label, policy in policies.items():
            cluster = presets.hybrid_cluster(nodes=4)
            result = run_workflow(
                workflow, cluster, scheduler="hdws", seed=5,
                noise_cv=0.1, fault_model=fm, recovery=policy,
            )
            cell = result.makespan if result.success else float("nan")
            table.set(label, f"rate={rate:g}", cell)
    print("\nmakespan (s) by transient-fault rate — nan = run failed")
    print(table.render())

    # Device loss: kill devices permanently mid-run and watch archiving
    # avoid regeneration of lost intermediate files.
    print("\n— permanent device failures (MTBF = 60 s/device) —")
    for label in ("retry", "retry+archive"):
        cluster = presets.hybrid_cluster(nodes=4)
        result = run_workflow(
            workflow, cluster, scheduler="hdws", seed=9, noise_cv=0.1,
            fault_model=FaultModel(device_mtbf=60.0),
            recovery=policies[label],
        )
        print(f"{label:14s}: success={result.success} "
              f"makespan={result.makespan:.1f}s "
              f"device_faults={result.execution.device_faults} "
              f"regenerations={result.execution.regenerations}")


if __name__ == "__main__":
    main()
