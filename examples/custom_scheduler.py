"""Extending the library with a custom scheduler.

Implements a "hungriest-device-first" scheduler in ~30 lines against the
:class:`~repro.schedulers.base.Scheduler` interface, registers it, and
benchmarks it against the bundled algorithms on a LIGO workflow — the
whole point of the plug-in scheduler API.

Run:  python examples/custom_scheduler.py
"""

from repro import compare_schedulers
from repro.platform import presets
from repro.schedulers import REGISTRY
from repro.schedulers.base import Scheduler, SchedulingContext, eft_placement
from repro.schedulers.schedule import Schedule
from repro.workflows.generators import ligo_inspiral


class GreedyThroughputScheduler(Scheduler):
    """Keep the fastest eligible device as busy as possible.

    Tasks are taken in topological order, largest work first within a
    level, and placed on the eligible device with the highest effective
    speed whose timeline tail is shortest — a throughput-first heuristic
    that ignores communication entirely (and shows why that's a mistake
    on data-heavy workflows).
    """

    name = "greedy-throughput"

    def schedule(self, context: SchedulingContext) -> Schedule:
        schedule = Schedule()
        for level in context.workflow.levels():
            for name in sorted(
                level, key=lambda n: -context.workflow.tasks[n].work
            ):
                device = min(
                    context.eligible_devices(name),
                    key=lambda d: (
                        schedule.timeline(d.uid).free_at()
                        + context.exec_time(name, d.uid),
                        d.uid,
                    ),
                )
                start, finish = eft_placement(context, schedule, name, device)
                schedule.add(name, device.uid, start, finish)
        return schedule


def main() -> None:
    # Registering makes the scheduler addressable by name everywhere —
    # the orchestrator, the CLI, compare_schedulers.
    REGISTRY["greedy-throughput"] = GreedyThroughputScheduler

    workflow = ligo_inspiral(size=60, seed=2)
    cluster = presets.hybrid_cluster(nodes=4)
    results = compare_schedulers(
        workflow, cluster,
        ["hdws", "heft", "greedy-throughput", "olb"],
        seed=2, noise_cv=0.1,
    )
    print(f"{workflow.name} on {cluster.describe()}\n")
    print(f"{'scheduler':18s} {'makespan':>9s}")
    for name, result in sorted(results.items(), key=lambda kv: kv[1].makespan):
        print(f"{name:18s} {result.makespan:9.2f}")


if __name__ == "__main__":
    main()
