"""Running a campaign ensemble: many workflows, one platform.

A discovery campaign rarely owns a cluster alone.  This example submits
three different analyses — an image mosaic, a sequence search and an sRNA
annotation — as one ensemble, and compares the three sharing disciplines:

* sequential (one at a time, submit order),
* priority (urgent analysis first),
* shared (space-shared super-DAG — the throughput play).

Run:  python examples/ensemble_campaign.py
"""

from repro.analysis.compare import ComparisonTable
from repro.core.ensemble import EnsembleMember, EnsembleRunner
from repro.core.orchestrator import RunConfig
from repro.platform import presets
from repro.workflows.generators import blast, montage, sipht


def main() -> None:
    members = [
        EnsembleMember("mosaic", montage(size=40, seed=1), priority=1.0),
        EnsembleMember("search", blast(size=30, seed=2), priority=3.0),
        EnsembleMember("srna", sipht(size=30, seed=3), priority=2.0),
    ]
    cluster = presets.hybrid_cluster(nodes=4)
    runner = EnsembleRunner(cluster, RunConfig(seed=1, noise_cv=0.1))

    print(f"platform: {cluster.describe()}")
    for m in members:
        print(f"member {m.member_id!r}: {m.workflow.n_tasks} tasks, "
              f"priority {m.priority:g}")

    table = ComparisonTable("discipline")
    for discipline in ("sequential", "priority", "shared"):
        res = runner.run(members, discipline=discipline)
        table.set(discipline, "makespan (s)", res.makespan)
        table.set(discipline, "mean slowdown", res.mean_slowdown)
        table.set(discipline, "energy (kJ)", res.energy_j / 1000.0)
        table.set(discipline, "throughput (wf/s)", res.throughput())
    print()
    print(table.render())
    print("\nReading: 'shared' packs the platform (best makespan and "
          "throughput); 'priority' gets the urgent member out first at "
          "the cost of the others; 'sequential' is the latency baseline "
          "for whoever submitted first.")


if __name__ == "__main__":
    main()
