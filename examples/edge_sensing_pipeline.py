"""Discovery at the edge: hand-built workflow on an IoT platform.

Shows the workflow-construction API directly (no generator): a
sensor-fusion pipeline where eight edge nodes each pre-filter their own
sensor capture (DSP-friendly), a fusion step joins them, and an anomaly
model scores the result.  The edge preset's 12.5 MB/s links make data
locality the whole ballgame — compare HDWS (locality tie-break) against
plain HEFT on bytes moved.

Run:  python examples/edge_sensing_pipeline.py
"""

from repro import compare_schedulers
from repro.platform import presets
from repro.platform.devices import DeviceClass
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task


def build_pipeline(n_sensors: int = 8) -> Workflow:
    """One capture per edge node -> per-sensor filter -> fuse -> score."""
    wf = Workflow(f"edge-sensing-{n_sensors}")
    filtered = []
    for i in range(n_sensors):
        # Each capture is *born on its edge node* — staging it anywhere
        # else costs real network time, so placement should follow data.
        capture = wf.add_file(DataFile(
            f"capture_{i}.raw", 120.0, initial=True, location=f"edge{i}"
        ))
        filt = wf.add_file(DataFile(f"filtered_{i}.npz", 6.0))
        filtered.append(filt)
        # The filter is a classic DSP kernel: 8x on a DSP, CPU-capable.
        wf.add_task(Task(
            name=f"prefilter_{i}",
            work=20.0,
            affinity={DeviceClass.DSP: 8.0},
            inputs=(capture.name,),
            outputs=(filt.name,),
            category="prefilter",
            memory_gb=0.5,
        ))

    fused = wf.add_file(DataFile("fused.npz", 30.0))
    wf.add_task(Task(
        name="fuse",
        work=15.0,
        inputs=tuple(f.name for f in filtered),
        outputs=(fused.name,),
        category="fuse",
        memory_gb=1.0,
    ))

    scores = wf.add_file(DataFile("anomaly_scores.json", 0.1))
    wf.add_task(Task(
        name="score",
        work=40.0,
        affinity={DeviceClass.DSP: 4.0},
        inputs=(fused.name,),
        outputs=(scores.name,),
        category="score",
        memory_gb=1.0,
    ))
    return wf


def main() -> None:
    workflow = build_pipeline()
    cluster = presets.edge_cluster(devices=8)
    print(f"workflow: {workflow.name} — {workflow.n_tasks} tasks")
    print(f"platform: {cluster.describe()}")
    print("links   : 12.5 MB/s (100 Mb) — locality decides everything\n")

    results = compare_schedulers(
        workflow, cluster,
        ["hdws", "heft", "roundrobin", "random"],  # cost-aware vs blind
        seed=4, noise_cv=0.1,
    )
    print(f"{'scheduler':10s} {'makespan':>9s} {'moved MB':>9s}")
    for name, result in results.items():
        moved = result.execution.network_mb + result.execution.staging_mb
        print(f"{name:10s} {result.makespan:9.2f} {moved:9.0f}")


if __name__ == "__main__":
    main()
