"""JobStore state machine, lease protocol, and contention guarantees."""

from __future__ import annotations

import itertools
import threading

import pytest

from repro.experiments.common import make_job, preset_spec
from repro.service import (
    ALLOWED_TRANSITIONS,
    CELL_STATES,
    IllegalTransition,
    JobStore,
    StoreError,
    TERMINAL_STATES,
    can_transition,
)
from repro.service.store import CACHED, DONE, LEASED, QUEUED, RUNNING
from repro.workflows.generators import montage

CLUSTER = preset_spec("hybrid", nodes=2, cores_per_node=2, gpus_per_node=1)


def _jobs(n=6, seed=11, prefix="svc"):
    wf = montage(size=10, seed=seed)
    return [
        make_job(wf, CLUSTER, scheduler="heft", seed=seed + i, noise_cv=0.1,
                 label=f"{prefix}:{i}")
        for i in range(n)
    ]


@pytest.fixture()
def store(tmp_path):
    s = JobStore(str(tmp_path / "store.db"))
    yield s
    s.close()


# --------------------------------------------------------------------- #
# the transition relation                                               #
# --------------------------------------------------------------------- #

def test_transition_relation_is_exactly_the_documented_one():
    """Property sweep: every (from, to) pair answers per the table."""
    for frm, to in itertools.product(CELL_STATES, CELL_STATES):
        assert can_transition(frm, to) == (to in ALLOWED_TRANSITIONS[frm])


def test_terminal_states_have_no_outgoing_edges():
    for state in TERMINAL_STATES:
        assert ALLOWED_TRANSITIONS[state] == ()
        for to in CELL_STATES:
            assert not can_transition(state, to)


def test_every_state_is_reachable_from_queued():
    """The forward relation covers the whole lifecycle."""
    reachable, frontier = set(), {QUEUED}
    while frontier:
        state = frontier.pop()
        reachable.add(state)
        frontier.update(set(ALLOWED_TRANSITIONS[state]) - reachable)
    assert reachable == set(CELL_STATES)


# --------------------------------------------------------------------- #
# submission                                                            #
# --------------------------------------------------------------------- #

def test_submit_queues_each_distinct_cell_once(store):
    jobs = _jobs(4)
    cid = store.submit("dup", jobs + jobs[:2])  # two duplicates
    status = store.campaign(cid)
    assert status["cells"] == 4
    assert store.counts(cid)[QUEUED] == 4


def test_submit_rejects_empty_campaigns(store):
    with pytest.raises(StoreError):
        store.submit("empty", [])


def test_campaign_ids_are_deterministic(tmp_path):
    """Same submissions against fresh stores mint identical ids."""
    ids = []
    for name in ("a", "b"):
        s = JobStore(str(tmp_path / f"{name}.db"))
        ids.append(s.submit("det", _jobs(3)))
        s.close()
    assert ids[0] == ids[1]


# --------------------------------------------------------------------- #
# lease lifecycle                                                       #
# --------------------------------------------------------------------- #

def test_lease_claims_in_submission_order_up_to_limit(store):
    jobs = _jobs(5)
    store.submit("order", jobs)
    lease = store.lease("w1", 3, ttl=5)
    assert len(lease) == 3
    assert [c.label for c in lease.cells] == ["svc:0", "svc:1", "svc:2"]
    assert all(c.attempts == 1 for c in lease.cells)
    counts = store.counts()
    assert counts[QUEUED] == 2 and counts[LEASED] == 3
    assert store.lease("w2", 5, ttl=5).cells[0].label == "svc:3"


def test_lease_on_empty_queue_returns_none(store):
    assert store.lease("w1", 4, ttl=5) is None


def test_complete_requires_running_and_live_token(store):
    cid = store.submit("life", _jobs(2))
    lease = store.lease("w1", 2, ttl=5)
    cell = lease.cells[0]

    # leased (not yet running) cells cannot complete, even with the token
    with pytest.raises(IllegalTransition):
        store.complete(cid, cell.key, lease.token, DONE, {"v": 1})

    assert store.mark_running(lease.token) == 2
    # a non-terminal target state is rejected outright
    with pytest.raises(IllegalTransition):
        store.complete(cid, cell.key, lease.token, RUNNING, {})
    # a token the store never granted is a stale write: dropped, not an error
    assert store.complete(cid, cell.key, "w9.999", DONE, {"v": 1}) is False
    assert store.cell(cid, cell.key)["state"] == RUNNING

    assert store.complete(cid, cell.key, lease.token, DONE, {"v": 1}) is True
    got = store.cell(cid, cell.key)
    assert got["state"] == DONE and got["result"] == {"v": 1}
    # a terminal cell clears its token, so a duplicate completion is a
    # stale write (dropped), never a second verdict
    assert store.complete(cid, cell.key, lease.token, CACHED, {}) is False
    assert store.cell(cid, cell.key)["state"] == DONE


def test_completing_an_unknown_cell_is_an_error(store):
    cid = store.submit("unknown", _jobs(1))
    with pytest.raises(StoreError):
        store.complete(cid, "no-such-key", "w1.1", DONE, {})


def test_release_returns_unfinished_cells_to_the_queue(store):
    cid = store.submit("release", _jobs(3))
    lease = store.lease("w1", 3, ttl=5)
    store.mark_running(lease.token)
    cell = lease.cells[0]
    store.complete(cid, cell.key, lease.token, DONE, {"v": 1})
    assert store.release(lease.token) == 2  # the two unfinished ones
    counts = store.counts()
    assert counts[QUEUED] == 2 and counts[DONE] == 1
    for row in store.cells(cid, state=QUEUED):
        assert row["lease_token"] is None and row["worker"] is None


# --------------------------------------------------------------------- #
# expiry and reclaim                                                    #
# --------------------------------------------------------------------- #

def test_expired_lease_requeues_exactly_once(store):
    cid = store.submit("expiry", _jobs(2))
    lease = store.lease("w1", 2, ttl=2)
    store.mark_running(lease.token)
    assert store.reclaim_expired() == []  # not expired yet
    for _ in range(3):
        store.tick()
    first = store.reclaim_expired()
    assert sorted(key for _cid, key in first) == sorted(
        c.key for c in lease.cells
    )
    # the second reclaim — or a concurrent one — finds nothing to do
    assert store.reclaim_expired() == []
    for row in store.cells(cid, state=QUEUED):
        assert row["reclaims"] == 1 and row["attempts"] == 1


def test_heartbeat_keeps_a_live_lease_alive(store):
    store.submit("hb", _jobs(1))
    lease = store.lease("w1", 1, ttl=2)
    store.mark_running(lease.token)
    for _ in range(6):
        store.tick()
        assert store.heartbeat(lease.token, 2) == 1
        assert store.reclaim_expired() == []


def test_reclaimed_lease_rejects_the_zombies_stale_token(store):
    """The SIGKILL story, minus the SIGKILL: old tokens lose."""
    cid = store.submit("zombie", _jobs(1))
    dead = store.lease("w-dead", 1, ttl=2)
    store.mark_running(dead.token)
    for _ in range(3):
        store.tick()
    assert len(store.reclaim_expired()) == 1

    live = store.lease("w-live", 1, ttl=5)
    assert live.cells[0].attempts == 2  # attempts survive the reclaim
    store.mark_running(live.token)
    key = live.cells[0].key

    # the presumed-dead worker wakes up and tries to write: discarded
    assert store.complete(cid, key, dead.token, DONE, {"who": "dead"}) is False
    assert store.complete(cid, key, live.token, DONE, {"who": "live"}) is True
    assert store.cell(cid, key)["result"] == {"who": "live"}


# --------------------------------------------------------------------- #
# contention                                                            #
# --------------------------------------------------------------------- #

def test_concurrent_lease_contention_never_double_assigns(tmp_path):
    """Workers on separate connections race; each cell has one owner."""
    path = str(tmp_path / "contended.db")
    seed_store = JobStore(path)
    seed_store.submit("contended", _jobs(24, prefix="race"))
    seed_store.close()

    claimed: list = []
    errors: list = []
    barrier = threading.Barrier(6)

    def grab(worker_no: int) -> None:
        s = JobStore(path)
        try:
            barrier.wait()
            while True:
                lease = s.lease(f"w{worker_no}", 3, ttl=50)
                if lease is None:
                    return
                claimed.append([c.key for c in lease.cells])
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            s.close()

    threads = [
        threading.Thread(target=grab, args=(i,)) for i in range(6)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert errors == []
    flat = [key for batch in claimed for key in batch]
    assert len(flat) == 24, "every cell claimed"
    assert len(set(flat)) == 24, "no cell claimed twice"


# --------------------------------------------------------------------- #
# queries                                                               #
# --------------------------------------------------------------------- #

def test_status_queries_and_dump_shapes(store):
    cid = store.submit("shapes", _jobs(3))
    lease = store.lease("w1", 1, ttl=5)
    store.mark_running(lease.token)
    cell = lease.cells[0]
    store.complete(cid, cell.key, lease.token, DONE, {"v": 2})

    status = store.campaign(cid)
    assert status["counts"][DONE] == 1 and status["counts"][QUEUED] == 2
    assert status["done"] is False

    assert [c["state"] for c in store.cells(cid, state=DONE)] == [DONE]
    with pytest.raises(StoreError):
        store.cells(cid, state="bogus")
    with pytest.raises(StoreError):
        store.campaign("no-such-campaign")
    assert store.cell(cid, "no-such-key") is None

    dump = store.dump()
    assert dump["schema"].startswith("repro.service.dump/")
    assert len(dump["cells"]) == 3
    assert dump["counts"][DONE] == 1
    assert not store.drained()
