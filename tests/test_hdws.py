"""Tests for the HDWS scheduler (the core contribution)."""

import pytest

from repro.core.hdws import HdwsScheduler
from repro.platform import presets
from repro.platform.devices import DeviceClass
from repro.schedulers import REGISTRY
from repro.schedulers.base import SchedulingContext
from repro.workflows.generators import cybershake, montage
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, cpu_task, gpu_task


@pytest.fixture(scope="module")
def ctx():
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1)
    return SchedulingContext(cybershake(n_variations=8, seed=1), cluster)


class TestRegistration:
    def test_registered_in_scheduler_registry(self):
        assert "hdws" in REGISTRY
        assert REGISTRY["hdws"] is HdwsScheduler


class TestAblations:
    @pytest.mark.parametrize("flag", [
        "use_affinity_rank", "use_scarcity", "use_locality", "use_lookahead",
    ])
    def test_each_ablation_valid(self, ctx, flag):
        sched = HdwsScheduler(**{flag: False})
        schedule = sched.schedule(ctx)
        schedule.validate_against(ctx.workflow)

    def test_all_off_still_valid(self, ctx):
        sched = HdwsScheduler(
            use_affinity_rank=False, use_scarcity=False,
            use_locality=False, use_lookahead=False,
        )
        sched.schedule(ctx).validate_against(ctx.workflow)


class TestScarcityTieBreak:
    def test_contended_class_detection(self):
        """One GPU + GPU-hungry workload => GPU pressure flagged > 1."""
        wf = Workflow("hungry")
        for i in range(8):
            out = wf.add_file(DataFile(f"o{i}", 1.0))
            wf.add_task(gpu_task(f"g{i}", 1000.0, gpu_speedup=20.0,
                                 outputs=(out.name,)))
            wf.add_task(cpu_task(f"c{i}", 1.0, inputs=(out.name,)))
        cluster = presets.hybrid_cluster(nodes=1, cores_per_node=4,
                                         gpus_per_node=1)
        ctx = SchedulingContext(wf, cluster)
        pressure = HdwsScheduler()._class_pressure(ctx)
        assert pressure.get(DeviceClass.GPU, 0.0) > 1.0

    def test_near_tied_low_benefit_task_yields_contended_gpu(self):
        """Near-tie between CPU and a contended GPU -> CPU wins."""
        wf = Workflow("mixed")
        for i in range(6):
            out = wf.add_file(DataFile(f"o{i}", 1.0))
            wf.add_task(gpu_task(f"heavy{i}", 2000.0, gpu_speedup=20.0,
                                 outputs=(out.name,)))
            wf.add_task(cpu_task(f"sink{i}", 1.0, inputs=(out.name,)))
        wf.add_file(DataFile("low_o", 1.0))
        # Speedup tuned so GPU time ~= CPU time (benefit ~1, a near-tie).
        wf.add_task(gpu_task("low", 200.0, gpu_speedup=0.0715,
                             outputs=("low_o",)))
        wf.add_task(cpu_task("low_sink", 1.0, inputs=("low_o",)))
        cluster = presets.hybrid_cluster(nodes=1, cores_per_node=2,
                                         gpus_per_node=1)
        ctx = SchedulingContext(wf, cluster)
        schedule = HdwsScheduler(use_scarcity=True).schedule(ctx)
        assert "gpu" not in schedule.device_of("low")

    def test_clearly_faster_gpu_is_never_blocked(self):
        """The tie-break must not veto a decisively better accelerator.

        An early hard-filter design lost badly here: if the GPU is much
        faster for a 'low-benefit-threshold' task and the CPUs are busy,
        HDWS must still use the GPU.
        """
        wf = Workflow("mixed2")
        for i in range(10):
            out = wf.add_file(DataFile(f"h{i}", 1.0))
            wf.add_task(gpu_task(f"heavy{i}", 1500.0, gpu_speedup=20.0,
                                 outputs=(out.name,)))
            wf.add_task(cpu_task(f"hs{i}", 1.0, inputs=(out.name,)))
        for i in range(10):
            out = wf.add_file(DataFile(f"l{i}", 1.0))
            # benefit ~1.4: below the 2.0 threshold but clearly faster
            wf.add_task(gpu_task(f"low{i}", 300.0, gpu_speedup=0.1,
                                 outputs=(out.name,)))
            wf.add_task(cpu_task(f"ls{i}", 1.0, inputs=(out.name,)))
        cluster = presets.gpu_count_cluster(1, nodes=2, cores_per_node=2)
        ctx = SchedulingContext(wf, cluster)
        from repro.schedulers.heft import HeftScheduler

        hdws = HdwsScheduler(use_scarcity=True).schedule(ctx).makespan
        heft = HeftScheduler().schedule(ctx).makespan
        assert hdws <= heft * 1.10

    def test_benefit_infinite_for_cpu_ineligible(self, ctx):
        from repro.platform.devices import DeviceClass as DC
        from repro.workflows.task import Task

        wf = Workflow("w")
        o = wf.add_file(DataFile("o", 1.0))
        wf.add_task(Task("gpuonly", 10.0,
                         affinity={DC.CPU: 0.0, DC.GPU: 5.0},
                         outputs=("o",)))
        wf.add_task(cpu_task("c", 1.0, inputs=("o",)))
        cluster = presets.hybrid_cluster(nodes=1, cores_per_node=2)
        c = SchedulingContext(wf, cluster)
        gpu = c.eligible_devices("gpuonly")[0]
        assert HdwsScheduler()._benefit(c, "gpuonly", gpu) == float("inf")


class TestLocality:
    def test_locality_reduces_planned_remote_bytes(self):
        wf = cybershake(n_variations=6, seed=2)
        cluster = presets.hybrid_cluster(nodes=4, cores_per_node=2)
        ctx = SchedulingContext(wf, cluster)

        def planned_remote_mb(schedule):
            total = 0.0
            for name, a in schedule.assignments.items():
                node = cluster.device(a.device).node.name
                for fname in wf.tasks[name].inputs:
                    f = wf.files[fname]
                    producer = wf.producer_of(fname)
                    if producer is None:
                        total += f.size_mb  # staged from storage
                    else:
                        pnode = cluster.device(
                            schedule.device_of(producer)
                        ).node.name
                        if pnode != node:
                            total += f.size_mb
            return total

        loc = HdwsScheduler(use_locality=True).schedule(ctx)
        noloc = HdwsScheduler(use_locality=False).schedule(ctx)
        assert planned_remote_mb(loc) <= planned_remote_mb(noloc)

    def test_locality_tolerance_bounds_makespan_loss(self, ctx):
        loc = HdwsScheduler(use_locality=True, locality_tolerance=0.05)
        noloc = HdwsScheduler(use_locality=False)
        m_loc = loc.schedule(ctx).makespan
        m_no = noloc.schedule(ctx).makespan
        # The tie-break may only pick candidates within the tolerance, so
        # per-task losses are bounded; end-to-end we allow a wider margin.
        assert m_loc <= m_no * 1.5


class TestQuality:
    def test_beats_or_matches_heft_on_suites(self):
        from repro.schedulers.heft import HeftScheduler

        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        for gen_seed in (1, 2, 3):
            wf = montage(n_images=8, seed=gen_seed)
            c = SchedulingContext(wf, cluster)
            hdws = HdwsScheduler().schedule(c).makespan
            heft = HeftScheduler().schedule(c).makespan
            assert hdws <= heft * 1.10
