"""Tests for post-run breakdowns."""

import pytest

from repro import run_workflow
from repro.analysis.breakdown import (
    by_category,
    by_device_class,
    render_breakdown,
    transfer_summary,
)
from repro.platform import presets
from repro.workflows.generators import montage


@pytest.fixture(scope="module")
def run():
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
    result = run_workflow(montage(n_images=6, seed=2), cluster, seed=1)
    return cluster, result


class TestByCategory:
    def test_all_categories_present(self, run):
        _cluster, result = run
        cats = by_category(result.execution.trace)
        assert "mProject" in cats
        assert cats["mProject"].tasks == 6
        assert cats["mProject"].busy_seconds > 0
        assert cats["mProject"].energy_j > 0

    def test_mean_seconds(self, run):
        _cluster, result = run
        cats = by_category(result.execution.trace)
        c = cats["mProject"]
        assert c.mean_seconds == pytest.approx(c.busy_seconds / c.tasks)

    def test_total_matches_task_count(self, run):
        _cluster, result = run
        cats = by_category(result.execution.trace)
        assert sum(c.tasks for c in cats.values()) == len(
            result.execution.records
        )


class TestByDeviceClass:
    def test_classes_cover_all_finishes(self, run):
        cluster, result = run
        classes = by_device_class(cluster, result.execution.trace)
        assert sum(int(v["tasks"]) for v in classes.values()) == len(
            result.execution.records
        )
        assert "cpu" in classes

    def test_gpu_ran_the_accelerable_stage(self, run):
        cluster, result = run
        classes = by_device_class(cluster, result.execution.trace)
        assert classes.get("gpu", {}).get("tasks", 0) > 0


class TestTransfers:
    def test_summary_nonnegative_and_consistent(self, run):
        _cluster, result = run
        moved = transfer_summary(result.execution.trace)
        assert moved["total_mb"] == pytest.approx(
            moved["peer_mb"] + moved["storage_mb"]
        )
        assert moved["storage_mb"] > 0  # raw images come from storage


class TestRender:
    def test_render_contains_all_sections(self, run):
        cluster, result = run
        text = render_breakdown(
            cluster, result.execution.trace, result.makespan
        )
        assert "busy time by task category" in text
        assert "work by device class" in text
        assert "utilization by device class" in text
        assert "data movement" in text

    def test_render_without_makespan_skips_utilization(self, run):
        cluster, result = run
        text = render_breakdown(cluster, result.execution.trace)
        assert "utilization" not in text
