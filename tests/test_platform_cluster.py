"""Tests for the cluster model."""

import pytest

from repro.platform.cluster import Cluster
from repro.platform.devices import DeviceClass, catalogue
from repro.platform.nodes import NodeSpec
from repro.platform import presets


def two_node_cluster(**kwargs):
    cat = catalogue()
    return Cluster(
        "test",
        [
            NodeSpec.of("a", [cat["cpu-std"], cat["gpu-std"]]),
            NodeSpec.of("b", [cat["cpu-std"]]),
        ],
        **kwargs,
    )


class TestConstruction:
    def test_basic_lookup(self):
        cl = two_node_cluster()
        assert len(cl.devices) == 3
        assert cl.node("a").name == "a"
        uid = cl.devices[0].uid
        assert cl.device(uid).uid == uid

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster("empty", [])

    def test_duplicate_node_names_rejected(self):
        cat = catalogue()
        specs = [NodeSpec.of("x", [cat["cpu-std"]])] * 2
        with pytest.raises(ValueError):
            Cluster("dup", specs)

    def test_missing_lookup_raises(self):
        cl = two_node_cluster()
        with pytest.raises(KeyError):
            cl.node("zzz")
        with pytest.raises(KeyError):
            cl.device("zzz")

    def test_device_classes(self):
        cl = two_node_cluster()
        assert cl.device_classes() == [DeviceClass.CPU, DeviceClass.GPU]

    def test_devices_of_class(self):
        cl = two_node_cluster()
        assert len(cl.devices_of_class(DeviceClass.CPU)) == 2

    def test_bad_storage_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            two_node_cluster(storage_bandwidth=0.0)


class TestTransfers:
    def test_same_node_costs_disk_pass(self):
        cl = two_node_cluster()
        t = cl.transfer_estimate("a", "a", 2000.0)
        assert t == pytest.approx(2000.0 / cl.node("a").disk_bandwidth)

    def test_cross_node_slower_than_same_node(self):
        cl = two_node_cluster()
        assert cl.transfer_estimate("a", "b", 500.0) > cl.transfer_estimate(
            "a", "a", 500.0
        )

    def test_zero_size_free(self):
        cl = two_node_cluster()
        assert cl.transfer_estimate("a", "b", 0.0) == 0.0
        assert cl.reserve_transfer("a", "b", 5.0, 0.0) == (5.0, 5.0)

    def test_negative_size_rejected(self):
        cl = two_node_cluster()
        with pytest.raises(ValueError):
            cl.transfer_estimate("a", "b", -1.0)

    def test_reserve_transfer_serializes_on_link(self):
        cl = two_node_cluster()
        s1, e1 = cl.reserve_transfer("a", "b", 0.0, 1000.0)
        s2, _e2 = cl.reserve_transfer("a", "b", 0.0, 1000.0)
        assert s1 == 0.0
        assert s2 == pytest.approx(e1)

    def test_reverse_direction_independent(self):
        cl = two_node_cluster()
        cl.reserve_transfer("a", "b", 0.0, 1000.0)
        s, _e = cl.reserve_transfer("b", "a", 0.0, 1000.0)
        assert s == 0.0

    def test_nic_caps_effective_bandwidth(self):
        cat = catalogue()
        slow_nic = NodeSpec.of("a", [cat["cpu-std"]], nic_bandwidth=10.0)
        fast = NodeSpec.of("b", [cat["cpu-std"]])
        cl = Cluster("niccap", [slow_nic, fast])
        # 100 MB over a 10 MB/s NIC: at least 10 s regardless of link speed.
        assert cl.transfer_estimate("a", "b", 100.0) >= 10.0


class TestStaging:
    def test_staging_estimate_positive(self):
        cl = two_node_cluster()
        assert cl.staging_estimate("a", 100.0) > 0.0
        assert cl.staging_estimate("a", 0.0) == 0.0

    def test_staging_negative_rejected(self):
        with pytest.raises(ValueError):
            two_node_cluster().staging_estimate("a", -1.0)

    def test_staging_serializes_on_storage(self):
        cl = two_node_cluster()
        _s1, e1 = cl.reserve_staging("a", 0.0, 1000.0)
        s2, _e2 = cl.reserve_staging("b", 0.0, 1000.0)
        assert s2 == pytest.approx(e1)
        assert cl.storage_bytes_served_mb == 2000.0

    def test_reset_clears_storage_frontier(self):
        cl = two_node_cluster()
        cl.reserve_staging("a", 0.0, 1000.0)
        cl.reset()
        s, _e = cl.reserve_staging("a", 0.0, 1.0)
        assert s == 0.0
        assert cl.storage_bytes_served_mb == 1.0


class TestSummaries:
    def test_total_and_reference_speed(self):
        cl = two_node_cluster()
        cat = catalogue()
        expected = 2 * cat["cpu-std"].speed + cat["gpu-std"].speed
        assert cl.total_speed() == pytest.approx(expected)
        assert cl.reference_speed() == cat["cpu-std"].speed

    def test_reference_speed_no_cpus_falls_back(self):
        cat = catalogue()
        cl = Cluster("gpuonly", [NodeSpec.of("a", [cat["gpu-std"]])])
        assert cl.reference_speed() == cat["gpu-std"].speed

    def test_describe_mentions_mix(self):
        text = two_node_cluster().describe()
        assert "2x cpu" in text
        assert "1x gpu" in text

    def test_alive_devices_excludes_failed(self):
        cl = two_node_cluster()
        cl.devices[0].failed = True
        assert len(cl.alive_devices()) == 2

    def test_reset_revives_devices(self):
        cl = two_node_cluster()
        cl.devices[0].failed = True
        cl.reset()
        assert len(cl.alive_devices()) == 3


class TestPresets:
    @pytest.mark.parametrize("name", sorted(presets.PRESETS))
    def test_presets_instantiate(self, name):
        cl = presets.by_name(name)
        assert len(cl.devices) >= 1
        assert cl.describe()

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            presets.by_name("nope")

    def test_hybrid_counts(self):
        cl = presets.hybrid_cluster(nodes=3, cores_per_node=2, gpus_per_node=2)
        assert len(cl.devices_of_class(DeviceClass.CPU)) == 6
        assert len(cl.devices_of_class(DeviceClass.GPU)) == 6

    def test_gpu_count_cluster_spreads_round_robin(self):
        cl = presets.gpu_count_cluster(5, nodes=4)
        per_node = [
            len(n.devices_of_class(DeviceClass.GPU)) for n in cl.nodes
        ]
        assert sum(per_node) == 5
        assert max(per_node) - min(per_node) <= 1

    def test_gpu_count_zero(self):
        cl = presets.gpu_count_cluster(0, nodes=2)
        assert cl.devices_of_class(DeviceClass.GPU) == []

    def test_dvfs_flag_equips_ladders(self):
        cl = presets.hybrid_cluster(nodes=1, dvfs=True)
        assert all(d.spec.power.dvfs_states for d in cl.devices)
        cl2 = presets.hybrid_cluster(nodes=1)
        assert all(not d.spec.power.dvfs_states for d in cl2.devices)

    def test_unrelated_cluster_has_many_classes(self):
        cl = presets.unrelated_cluster()
        assert len(cl.device_classes()) >= 4
