"""Cross-cutting tests every scheduler must pass."""

import pytest

import repro.core  # noqa: F401  (registers hdws)
from repro.platform import presets
from repro.schedulers import REGISTRY, by_name
from repro.schedulers.base import SchedulingContext
from repro.workflows.generators import ligo_inspiral, montage, random_dag

ALL = sorted(REGISTRY)


@pytest.fixture(scope="module")
def contexts():
    """A few (workflow, cluster) contexts reused across the matrix."""
    out = {}
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1)
    out["montage"] = SchedulingContext(montage(n_images=6, seed=3), cluster)
    out["ligo"] = SchedulingContext(
        ligo_inspiral(n_segments=6, group_size=3, seed=3), cluster
    )
    out["random"] = SchedulingContext(
        random_dag(n_tasks=40, ccr=1.0, seed=3), cluster
    )
    unrelated = presets.unrelated_cluster()
    out["unrelated"] = SchedulingContext(montage(n_images=6, seed=3), unrelated)
    return out


@pytest.mark.parametrize("sched_name", ALL)
@pytest.mark.parametrize("ctx_name", ["montage", "ligo", "random", "unrelated"])
def test_produces_complete_valid_schedule(contexts, sched_name, ctx_name):
    ctx = contexts[ctx_name]
    schedule = by_name(sched_name).schedule(ctx)
    schedule.validate_against(ctx.workflow)
    assert schedule.makespan > 0


@pytest.mark.parametrize("sched_name", ALL)
def test_deterministic(contexts, sched_name):
    ctx = contexts["montage"]
    s1 = by_name(sched_name).schedule(ctx)
    s2 = by_name(sched_name).schedule(ctx)
    assert s1.makespan == s2.makespan
    assert {t: a.device for t, a in s1.assignments.items()} == {
        t: a.device for t, a in s2.assignments.items()
    }


@pytest.mark.parametrize("sched_name", ALL)
def test_respects_eligibility(contexts, sched_name):
    ctx = contexts["random"]  # mixes CPU-only and GPU-capable tasks
    schedule = by_name(sched_name).schedule(ctx)
    for name, a in schedule.assignments.items():
        eligible = {d.uid for d in ctx.eligible_devices(name)}
        assert a.device in eligible


@pytest.mark.parametrize("sched_name", ALL)
def test_makespan_at_least_best_critical_path(contexts, sched_name):
    from repro.analysis.metrics import critical_path_best_time

    ctx = contexts["ligo"]
    schedule = by_name(sched_name).schedule(ctx)
    assert schedule.makespan >= critical_path_best_time(ctx) - 1e-9


@pytest.mark.parametrize("sched_name", ALL)
def test_no_device_timeline_overlap(contexts, sched_name):
    ctx = contexts["montage"]
    schedule = by_name(sched_name).schedule(ctx)
    for tl in schedule.timelines.values():
        intervals = tl.intervals
        for (s0, e0, _t0), (s1, _e1, _t1) in zip(intervals, intervals[1:]):
            assert e0 <= s1 + 1e-9


class TestQualityOrdering:
    """The informed heuristics must beat the naive mappers."""

    def test_heft_family_beats_naive(self, contexts):
        ctx = contexts["ligo"]
        heft = by_name("heft").schedule(ctx).makespan
        rr = by_name("roundrobin").schedule(ctx).makespan
        rand = by_name("random").schedule(ctx).makespan
        assert heft < rr
        assert heft < rand

    def test_hdws_competitive_with_heft(self, contexts):
        for ctx_name in ("montage", "ligo", "random"):
            ctx = contexts[ctx_name]
            hdws = by_name("hdws").schedule(ctx).makespan
            heft = by_name("heft").schedule(ctx).makespan
            assert hdws <= heft * 1.15

    def test_mct_beats_olb(self, contexts):
        ctx = contexts["ligo"]
        assert (
            by_name("mct").schedule(ctx).makespan
            <= by_name("olb").schedule(ctx).makespan
        )

    def test_unknown_scheduler_raises(self):
        with pytest.raises(KeyError):
            by_name("quantum-annealer")
