"""Tests for power and DVFS models."""

import pytest

from repro.platform.power import DvfsState, PowerModel, default_dvfs_ladder


class TestDvfsState:
    def test_valid_state(self):
        s = DvfsState("p1", 0.8, 0.5)
        assert s.freq_scale == 0.8

    def test_bad_freq_scale_rejected(self):
        with pytest.raises(ValueError):
            DvfsState("bad", 0.0, 0.5)
        with pytest.raises(ValueError):
            DvfsState("bad", 2.0, 0.5)

    def test_bad_power_scale_rejected(self):
        with pytest.raises(ValueError):
            DvfsState("bad", 1.0, 0.0)

    def test_default_ladder_monotone(self):
        ladder = default_dvfs_ladder()
        freqs = [s.freq_scale for s in ladder]
        powers = [s.power_scale for s in ladder]
        assert freqs == sorted(freqs, reverse=True)
        assert powers == sorted(powers, reverse=True)
        assert ladder[0].freq_scale == 1.0

    def test_ladder_is_subcubic_power(self):
        for s in default_dvfs_ladder():
            assert s.power_scale <= s.freq_scale ** 2.5 + 0.01


class TestPowerModel:
    def test_defaults(self):
        pm = PowerModel()
        assert pm.busy_watts >= pm.idle_watts

    def test_busy_below_idle_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=100.0, busy_watts=50.0)

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(idle_watts=-1.0)

    def test_dynamic_watts(self):
        pm = PowerModel(idle_watts=40.0, busy_watts=140.0)
        assert pm.dynamic_watts == 100.0

    def test_busy_power_with_state_scales_dynamic_only(self):
        pm = PowerModel(idle_watts=40.0, busy_watts=140.0)
        state = DvfsState("half", freq_scale=0.7, power_scale=0.5)
        assert pm.busy_power(state) == pytest.approx(40.0 + 100.0 * 0.5)

    def test_busy_power_without_state_is_full(self):
        pm = PowerModel(idle_watts=40.0, busy_watts=140.0)
        assert pm.busy_power() == 140.0

    def test_idle_power_asleep(self):
        pm = PowerModel(idle_watts=40.0, busy_watts=140.0, sleep_watts=1.0)
        assert pm.idle_power() == 40.0
        assert pm.idle_power(asleep=True) == 1.0

    def test_energy_integration(self):
        pm = PowerModel(idle_watts=10.0, busy_watts=110.0)
        assert pm.energy(2.0, 3.0) == pytest.approx(110 * 2 + 10 * 3)

    def test_energy_negative_durations_rejected(self):
        with pytest.raises(ValueError):
            PowerModel().energy(-1.0, 0.0)

    def test_state_lookup(self):
        pm = PowerModel().with_dvfs()
        assert pm.state("p2").name == "p2"
        with pytest.raises(KeyError):
            pm.state("p99")

    def test_with_dvfs_preserves_draws(self):
        pm = PowerModel(idle_watts=7.0, busy_watts=77.0)
        upgraded = pm.with_dvfs()
        assert upgraded.idle_watts == 7.0
        assert upgraded.busy_watts == 77.0
        assert len(upgraded.dvfs_states) == 4
