"""Tests for named RNG substreams."""

import numpy as np
import pytest

from repro.sim.rng import RngStreams, choice_weighted


class TestRngStreams:
    def test_same_seed_same_name_same_draws(self):
        a = RngStreams(42).stream("x").normal(size=5)
        b = RngStreams(42).stream("x").normal(size=5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        rng = RngStreams(42)
        a = rng.stream("a").normal(size=5)
        b = rng.stream("b").normal(size=5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").normal(size=5)
        b = RngStreams(2).stream("x").normal(size=5)
        assert not np.allclose(a, b)

    def test_stream_is_cached_not_restarted(self):
        rng = RngStreams(0)
        first = rng.stream("x").normal()
        second = rng.stream("x").normal()
        assert first != second  # continuation, not a restart

    def test_fresh_restarts_the_stream(self):
        rng = RngStreams(0)
        first = rng.stream("x").normal()
        restarted = rng.fresh("x").normal()
        assert first == restarted

    def test_creation_order_does_not_matter(self):
        r1 = RngStreams(9)
        r1.stream("a")
        x1 = r1.stream("b").normal()
        r2 = RngStreams(9)
        x2 = r2.stream("b").normal()  # "a" never created here
        assert x1 == x2

    def test_names_listed_in_creation_order(self):
        rng = RngStreams(0)
        rng.stream("b")
        rng.stream("a")
        assert rng.names() == ["b", "a"]

    def test_spawn_children_are_independent_and_deterministic(self):
        parent = RngStreams(5)
        c1 = parent.spawn(0).stream("x").normal(size=3)
        c2 = parent.spawn(1).stream("x").normal(size=3)
        c1_again = RngStreams(5).spawn(0).stream("x").normal(size=3)
        assert not np.allclose(c1, c2)
        assert np.allclose(c1, c1_again)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("nope")

    def test_seed_property(self):
        assert RngStreams(17).seed == 17


class TestChoiceWeighted:
    def test_zero_weight_items_never_drawn(self):
        rng = np.random.default_rng(0)
        draws = {
            choice_weighted(rng, ["a", "b"], [0.0, 1.0]) for _ in range(50)
        }
        assert draws == {"b"}

    def test_weights_need_not_be_normalized(self):
        rng = np.random.default_rng(0)
        assert choice_weighted(rng, ["only"], [17.0]) == "only"

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            choice_weighted(np.random.default_rng(0), [], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            choice_weighted(np.random.default_rng(0), ["a"], [1.0, 2.0])

    def test_nonpositive_total_rejected(self):
        with pytest.raises(ValueError):
            choice_weighted(np.random.default_rng(0), ["a"], [0.0])
