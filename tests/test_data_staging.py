"""Tests for staging source selection."""

import pytest

from repro.data.catalog import ReplicaCatalog
from repro.data.staging import choose_source
from repro.platform import presets


@pytest.fixture
def cluster():
    return presets.hybrid_cluster(nodes=3, cores_per_node=1)


class TestChooseSource:
    def test_local_replica_is_free(self, cluster):
        cat = ReplicaCatalog()
        cat.register("f", "n1")
        d = choose_source(cat, cluster, "f", 100.0, "n1")
        assert d.is_local
        assert d.cost == 0.0

    def test_no_replica_raises(self, cluster):
        with pytest.raises(LookupError):
            choose_source(ReplicaCatalog(), cluster, "ghost", 1.0, "n0")

    def test_prefers_cheapest_source(self, cluster):
        cat = ReplicaCatalog()
        cat.register("f", ReplicaCatalog.STORAGE)
        cat.register("f", "n1")
        d = choose_source(cat, cluster, "f", 500.0, "n0")
        peer = cluster.transfer_estimate("n1", "n0", 500.0)
        storage = cluster.staging_estimate("n0", 500.0)
        assert d.cost == pytest.approx(min(peer, storage))

    def test_storage_only(self, cluster):
        cat = ReplicaCatalog()
        cat.register("f", ReplicaCatalog.STORAGE)
        d = choose_source(cat, cluster, "f", 100.0, "n2")
        assert d.source == ReplicaCatalog.STORAGE
        assert d.cost > 0

    def test_decision_fields(self, cluster):
        cat = ReplicaCatalog()
        cat.register("f", "n0")
        d = choose_source(cat, cluster, "f", 42.0, "n2")
        assert d.file_name == "f"
        assert d.size_mb == 42.0
        assert d.destination == "n2"
        assert not d.is_local
