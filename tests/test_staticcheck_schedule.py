"""Schedule-auditor tests.

Mutation self-tests: each ``schedule-*`` check must fire on a schedule
seeded with exactly its defect.  Defects that :class:`Schedule.add`
itself rejects (double-booked timelines) are seeded by writing the
assignments dict directly — the auditor exists precisely to catch
schedules whose construction bypassed the safe API.
"""

from repro.platform.cluster import Cluster
from repro.platform.devices import DeviceClass, DeviceSpec
from repro.platform.nodes import NodeSpec
from repro.schedulers.base import SchedulingContext
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.schedule import Assignment, Schedule
from repro.staticcheck import audit_schedule
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task, cpu_task


def two_device_cluster() -> Cluster:
    spec = DeviceSpec("c", DeviceClass.CPU, speed=10.0)
    return Cluster("pair", [NodeSpec("n0", (spec, spec))])


UID0 = "n0:c#0"
UID1 = "n0:c#1"


def chain_workflow() -> Workflow:
    wf = Workflow("chain")
    wf.add_file(DataFile("fin", 1.0, initial=True))
    wf.add_file(DataFile("mid", 1.0))
    wf.add_file(DataFile("out", 1.0))
    wf.add_task(cpu_task("a", 10.0, inputs=("fin",), outputs=("mid",)))
    wf.add_task(cpu_task("b", 10.0, inputs=("mid",), outputs=("out",)))
    return wf


def good_plan() -> Schedule:
    plan = Schedule()
    plan.add("a", UID0, 0.0, 1.0)
    plan.add("b", UID0, 1.0, 2.0)
    return plan


def checks(findings):
    return {f.check for f in findings}


class TestAuditMutations:
    def test_sound_plan_is_clean(self):
        fs = audit_schedule(good_plan(), chain_workflow(), two_device_cluster())
        assert fs == []

    def test_missing_task_fires(self):
        plan = Schedule()
        plan.add("a", UID0, 0.0, 1.0)
        fs = audit_schedule(plan, chain_workflow(), two_device_cluster())
        assert "schedule-missing-task" in checks(fs)

    def test_unknown_task_fires(self):
        plan = good_plan()
        plan.add("ghost", UID1, 0.0, 1.0)
        fs = audit_schedule(plan, chain_workflow(), two_device_cluster())
        assert "schedule-unknown-task" in checks(fs)

    def test_unknown_device_fires(self):
        plan = Schedule()
        plan.add("a", "mars:x#0", 0.0, 1.0)
        plan.add("b", UID0, 1.0, 2.0)
        fs = audit_schedule(plan, chain_workflow(), two_device_cluster())
        assert "schedule-unknown-device" in checks(fs)

    def test_dead_device_fires(self):
        cluster = two_device_cluster()
        cluster.device(UID0).failed = True
        fs = audit_schedule(good_plan(), chain_workflow(), cluster)
        assert "schedule-dead-device" in checks(fs)

    def test_ineligible_class_fires(self):
        wf = chain_workflow()
        wf.add_file(DataFile("gout", 1.0))
        wf.add_task(Task("g", 10.0, affinity={DeviceClass.CPU: 0.0,
                                              DeviceClass.GPU: 5.0},
                         outputs=("gout",)))
        plan = good_plan()
        plan.add("g", UID1, 0.0, 1.0)
        fs = audit_schedule(plan, wf, two_device_cluster())
        hits = [f for f in fs if f.check == "schedule-ineligible-device"]
        assert hits and "class" in hits[0].message

    def test_ineligible_memory_fires(self):
        wf = chain_workflow()
        wf.add_file(DataFile("fout", 1.0))
        wf.add_task(cpu_task("fat", 10.0, memory_gb=1e6, outputs=("fout",)))
        plan = good_plan()
        plan.add("fat", UID1, 0.0, 1.0)
        fs = audit_schedule(plan, wf, two_device_cluster())
        hits = [f for f in fs if f.check == "schedule-ineligible-device"]
        assert hits and "GB" in hits[0].message

    def test_unknown_dvfs_fires(self):
        plan = good_plan()
        plan.dvfs_choice["a"] = "warp9"
        fs = audit_schedule(plan, chain_workflow(), two_device_cluster())
        assert "schedule-unknown-dvfs" in checks(fs)

    def test_negative_time_fires(self):
        plan = Schedule()
        plan.add("a", UID0, -5.0, -4.0)
        plan.add("b", UID0, 0.0, 1.0)
        fs = audit_schedule(plan, chain_workflow(), two_device_cluster())
        assert "schedule-negative-time" in checks(fs)

    def test_precedence_violation_fires(self):
        plan = Schedule()
        plan.add("a", UID0, 0.0, 2.0)
        plan.add("b", UID1, 0.5, 1.5)  # starts before its predecessor ends
        fs = audit_schedule(plan, chain_workflow(), two_device_cluster())
        assert "schedule-precedence" in checks(fs)

    def test_slot_overflow_fires(self):
        # Schedule.add would reject the overlap, so write the assignments
        # directly — the auditor must not trust the timelines.
        plan = Schedule()
        plan.assignments["a"] = Assignment("a", UID0, 0.0, 2.0)
        plan.assignments["b"] = Assignment("b", UID0, 2.5, 3.5)
        wf = chain_workflow()
        wf.add_file(DataFile("cout", 1.0))
        wf.add_task(cpu_task("c", 10.0, outputs=("cout",)))
        plan.assignments["c"] = Assignment("c", UID0, 0.5, 1.5)
        fs = audit_schedule(plan, wf, two_device_cluster())
        assert "schedule-slot-overflow" in checks(fs)


class TestRealSchedulers:
    def test_heft_plan_passes_audit(self, small_montage, hybrid_cluster):
        plan = HeftScheduler().schedule(
            SchedulingContext(small_montage, hybrid_cluster)
        )
        assert audit_schedule(plan, small_montage, hybrid_cluster) == []

    def test_every_registered_scheduler_passes_audit(
        self, small_montage, hybrid_cluster
    ):
        import repro.core  # noqa: F401  (registers hdws)
        from repro.schedulers import REGISTRY

        for name in sorted(REGISTRY):
            hybrid_cluster.reset()
            ctx = SchedulingContext(small_montage, hybrid_cluster)
            plan = REGISTRY[name]().schedule(ctx)
            findings = audit_schedule(plan, small_montage, hybrid_cluster)
            assert findings == [], f"{name}: {[str(f) for f in findings]}"
