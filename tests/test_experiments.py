"""Tests for the experiment runners (micro-quick configurations)."""

import pytest

from repro.experiments import REGISTRY
from repro.experiments.common import ExperimentResult, suite_workflows


class TestCommon:
    def test_suite_workflows_five_suites(self):
        wfs = suite_workflows(size=20, seed=0)
        assert set(wfs) == {
            "montage", "cybershake", "epigenomics", "ligo", "sipht"
        }
        for wf in wfs.values():
            assert wf.n_tasks > 5

    def test_registry_complete(self):
        core = {
            "t1", "t2", "t3", "t4", "t5",
            "f1", "f2", "f3", "f4", "f5", "f6", "f7",
        }
        assert core <= set(REGISTRY)
        extensions = set(REGISTRY) - core
        assert all(x.startswith("x") for x in extensions)

    def test_experiment_result_render(self):
        res = ExperimentResult("X", series={"s": {1.0: 2.0}},
                               notes={"k": "v"})
        text = res.render()
        assert "X" in text and "s" in text and "k: v" in text


@pytest.mark.parametrize("exp_id", sorted(REGISTRY))
def test_experiment_quick_runs_and_renders(exp_id):
    """Every experiment runs in quick mode and renders something."""
    result = REGISTRY[exp_id](quick=True, seed=1)
    assert isinstance(result, ExperimentResult)
    text = result.render()
    assert len(text) > 50


class TestShapes:
    """The load-bearing shape claims of the reproduction."""

    def test_t1_hdws_among_best(self):
        res = REGISTRY["t1"](quick=True, seed=0)
        geo = res.notes["geomean_makespan"]
        best = min(geo.values())
        assert geo["hdws"] <= best * 1.10

    def test_t1_informed_beat_naive(self):
        res = REGISTRY["t1"](quick=True, seed=0)
        geo = res.notes["geomean_makespan"]
        assert geo["hdws"] < geo["olb"]
        assert geo["heft"] < geo["olb"]

    def test_t2_gpu_speedup_substantial(self):
        res = REGISTRY["t2"](quick=True, seed=0)
        assert res.notes["gpu_speedup_geomean"] > 2.0

    def test_f1_speedup_grows_with_nodes(self):
        res = REGISTRY["f1"](quick=True, seed=0)
        series = res.series["speedup[hdws]"]
        xs = sorted(series)
        assert series[xs[-1]] > series[xs[0]]

    def test_f2_gap_grows_with_ccr(self):
        res = REGISTRY["f2"](quick=True, seed=0)
        olb = res.series["vs-hdws[olb]"]
        xs = sorted(olb)
        assert olb[xs[-1]] >= olb[xs[0]] * 0.9  # no collapse at high CCR

    def test_f3_first_gpu_most_valuable(self):
        res = REGISTRY["f3"](quick=True, seed=0)
        for wname, gains in res.notes["marginal_utility"].items():
            assert gains["first_gpu"] >= gains["last_gpu"] * 0.9

    def test_t3_energy_aware_saves_energy(self):
        res = REGISTRY["t3"](quick=True, seed=0)
        geo_e = res.notes["geomean_energy"]
        geo_m = res.notes["geomean_makespan"]
        assert geo_e["ea-0.3"] < geo_e["heft"]
        assert geo_m["ea-0.3"] > geo_m["heft"]  # the price of saving energy

    def test_f7_endpoints_ordered(self):
        res = REGISTRY["f7"](quick=True, seed=0)
        makespan = res.series["makespan"]
        energy = res.series["energy_j"]
        assert makespan[1.0] <= makespan[0.0]
        assert energy[0.0] <= energy[1.0]

    def test_f5_protection_keeps_success(self):
        res = REGISTRY["f5"](quick=True, seed=0)
        success = res.series["success-rate[none]"]
        rates = sorted(success)
        # no faults -> always succeeds without protection
        assert success[rates[0]] == 1.0

    def test_t5_overhead_grows_with_size(self):
        res = REGISTRY["t5"](quick=True, seed=0)
        growth = res.notes["growth_first_to_last"]
        assert all(g > 1.0 for g in growth.values())

    def test_f6_locality_cuts_traffic(self):
        res = REGISTRY["f6"](quick=True, seed=0)
        ratios = res.notes["traffic_ratio_noloc_vs_loc"]
        assert ratios["montage"] >= 1.0
