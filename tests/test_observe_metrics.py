"""Metrics registry: instrument semantics, collector mapping, purity.

The collector tests are mutation-style: for every metric in the catalog
(see :mod:`repro.observe.collect`), a synthetic trace record must move
exactly the expected instruments and nothing else — a metric nothing can
move is dead weight, and a record that moves a neighbour's metric is a
mapping bug.
"""

import json

import pytest

from repro.core.api import run_workflow
from repro.observe import (
    Counter,
    Gauge,
    Histogram,
    MetricsCollector,
    MetricsRegistry,
    SNAPSHOT_SCHEMA,
    env_metrics,
)
from repro.platform import presets
from repro.sim.trace import TraceRecord
from repro.workflows.generators import montage


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_set_last_write_wins(self):
        g = Gauge("x")
        g.set(5)
        g.set(2)
        assert g.value == 2.0

    def test_set_max_keeps_running_maximum(self):
        g = Gauge("x")
        g.set_max(3)
        g.set_max(1)
        assert g.value == 3.0


class TestHistogram:
    def test_bucket_placement_inclusive_upper_bounds(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        # [<=1, <=10, overflow]
        assert h.counts == [2, 2, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 11.0
        assert h.mean == pytest.approx((0.5 + 1 + 5 + 10 + 11) / 5)

    def test_empty_histogram(self):
        h = Histogram("x")
        assert h.mean == 0.0
        assert h.min is None and h.max is None

    def test_rejects_unsorted_or_duplicate_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", buckets=())

    def test_as_dict_is_json_native(self):
        h = Histogram("x", buckets=(1.0,))
        h.observe(0.5)
        doc = json.loads(json.dumps(h.as_dict()))
        assert doc["counts"] == [1, 0]
        assert doc["sum"] == 0.5


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("b") is m.gauge("b")
        assert m.histogram("c") is m.histogram("c")

    def test_helpers_and_value(self):
        m = MetricsRegistry()
        m.inc("a", 2)
        m.set_gauge("b", 7)
        m.observe("c", 0.5)
        assert m.value("a") == 2.0
        assert m.value("b") == 7.0
        assert m.value("missing") == 0.0
        assert m.names() == ["a", "b", "c"]

    def test_snapshot_sorted_and_json_serializable(self):
        m = MetricsRegistry()
        m.inc("z")
        m.inc("a")
        m.profile("wall", 0.1)
        snap = m.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["profile"] == {"wall": 0.1}
        json.dumps(snap)  # must not raise

    def test_profile_separate_from_instruments(self):
        m = MetricsRegistry()
        m.profile("wall", 1.0)
        assert m.names() == []
        assert m.value("wall") == 0.0


def _fed(kind, **data):
    """A fresh registry after the collector consumed one synthetic record."""
    registry = MetricsRegistry()
    collector = MetricsCollector(registry)
    collector.on_record(TraceRecord(1.0, kind, data))
    return registry


#: (record kind, payload) -> exactly these (metric, value) moves.
COLLECTOR_CASES = [
    ("task.stage", {"task": "t", "device": "d"},
     {"tasks.dispatched": 1.0}),
    ("task.finish", {"task": "t", "device": "d", "duration": 2.0,
                     "energy_j": 5.0},
     {"tasks.completed": 1.0, "energy.joules": 5.0, "task.duration_s": 2.0}),
    ("task.dead", {"task": "t"}, {"tasks.dead": 1.0}),
    ("task.regenerate", {"task": "t"}, {"tasks.regenerated": 1.0}),
    ("task.preempt", {"task": "t", "device": "d", "energy_j": 3.0},
     {"tasks.preempted": 1.0, "energy.joules": 3.0}),
    ("fault.task", {"task": "t", "device": "d", "energy_j": 1.5},
     {"faults.task": 1.0, "energy.joules": 1.5}),
    ("fault.device", {"device": "d"}, {"faults.device": 1.0}),
    ("transfer.start", {"file": "f", "src": "n0", "dst": "n1",
                        "size_mb": 8.0},
     {"transfers.count": 1.0, "transfers.mb": 8.0, "transfer.size_mb": 8.0}),
    ("store.evict", {"node": "n0"}, {"store.evictions": 1.0}),
    ("store.overflow", {"node": "n0"}, {"store.overflows": 1.0}),
    ("data.lost", {"file": "f"}, {"data.lost": 1.0}),
    ("archive", {"file": "f"}, {"files.archived": 1.0}),
]


class TestCollectorMapping:
    @pytest.mark.parametrize(
        "kind,payload,expected",
        COLLECTOR_CASES,
        ids=[k for k, _, _ in COLLECTOR_CASES],
    )
    def test_record_moves_exactly_its_metrics(self, kind, payload, expected):
        registry = _fed(kind, **payload)
        # Every expected instrument moved to the expected value...
        snap = registry.snapshot()
        for name, value in expected.items():
            if name in snap["histograms"]:
                hist = snap["histograms"][name]
                assert hist["count"] == 1 and hist["sum"] == value
            else:
                assert registry.value(name) == value, name
        # ...and nothing else was touched (mutation-style exactness).
        assert set(registry.names()) == set(expected)

    def test_unknown_kind_moves_nothing(self):
        assert _fed("dvfs.transition", device="d").names() == []

    def test_zero_energy_not_counted(self):
        registry = _fed("task.finish", task="t", device="d",
                        duration=1.0, energy_j=0.0)
        assert "energy.joules" not in registry.names()


class TestIntegration:
    def _run(self, **kw):
        return run_workflow(
            montage(size=20, seed=3),
            presets.hybrid_cluster(),
            scheduler="heft",
            seed=3,
            noise_cv=0.1,
            **kw,
        )

    def test_instrumented_run_snapshot_consistency(self):
        res = self._run(metrics=True)
        snap = res.metrics
        assert snap is not None and snap["schema"] == SNAPSHOT_SCHEMA
        c = snap["counters"]
        assert c["tasks.completed"] == c["tasks.dispatched"]
        assert c["sim.events"] == float(res.execution.events) > 0
        assert snap["gauges"]["run.makespan"] == pytest.approx(res.makespan)
        n_devices = snap["gauges"]["devices.alive"] + snap["gauges"]["devices.failed"]
        assert snap["histograms"]["device.busy_s"]["count"] == n_devices > 0
        assert snap["histograms"]["device.utilization"]["count"] == n_devices
        # Planning + run wall-time and throughput profile in place.
        assert {"plan.wall_s", "run.wall_s", "sim.events_per_sec"} <= set(
            snap["profile"]
        )
        json.dumps(snap)

    def test_metrics_are_pure_observation(self):
        bare = self._run()
        observed = self._run(metrics=True)
        assert bare.metrics is None
        assert observed.makespan == bare.makespan
        assert len(observed.execution.trace.records) == len(
            bare.execution.trace.records
        )

    def test_instrumented_runs_deterministic(self):
        a, b = self._run(metrics=True).metrics, self._run(metrics=True).metrics
        # Deterministic sections identical; profile is wall-clock and may
        # differ — that is its contract.
        for section in ("counters", "gauges", "histograms"):
            assert a[section] == b[section]

    def test_env_variable_enables_and_explicit_false_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert self._run().metrics is not None
        assert self._run(metrics=False).metrics is None


class TestEnvSwitch:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("no", False),
    ])
    def test_env_metrics(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_METRICS", value)
        assert env_metrics() is expected

    def test_env_metrics_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_METRICS", raising=False)
        assert env_metrics() is False
