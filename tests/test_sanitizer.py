"""Sanitizer tests.

Two halves:

* *mutation self-tests* — seed one deliberate violation per invariant
  (crafted trace records, mutated record states, tampered results) and
  assert the named check fires.  A checker that cannot detect its own
  target violation is worthless.
* *clean-run tests* — stress configurations (replication, faults, device
  loss, checkpointing, every mode) run under a strict sanitizer and must
  come back violation-free.
"""

import pytest

from repro import run_workflow
from repro.core.executor import WorkflowExecutor, _Clone
from repro.core.policies import StaticPolicy
from repro.data.catalog import ReplicaCatalog
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform import presets
from repro.platform.cluster import Cluster
from repro.platform.devices import catalogue
from repro.platform.nodes import NodeSpec
from repro.sanitizer import Sanitizer, SanitizerError, audit_result
from repro.schedulers.base import SchedulingContext
from repro.schedulers.heft import HeftScheduler
from repro.workflows.generators import montage
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, cpu_task


def tiny_workflow():
    """One producer-free consumer of a storage-resident input."""
    wf = Workflow("tiny")
    wf.add_file(DataFile("fin", 10.0, initial=True))
    wf.add_file(DataFile("fout", 0.1))
    wf.add_task(cpu_task("c", 10.0, inputs=("fin",), outputs=("fout",)))
    return wf


def make_executor(wf, cluster, strict=False, **kwargs):
    cluster.reset()
    plan = HeftScheduler().schedule(SchedulingContext(wf, cluster))
    executor = WorkflowExecutor(
        wf, cluster, StaticPolicy(plan), sanitize=True, **kwargs
    )
    executor.sanitizer.strict = strict
    return executor


def checks(executor):
    return {v.check for v in executor.sanitizer.violations}


class TestMutationSelfTests:
    """Each invariant check must fire on its seeded violation."""

    def test_illegal_transition_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        executor.run()
        executor.records["c"].state = "running"  # done -> running: illegal
        assert "illegal-transition" in checks(executor)

    def test_catalog_time_travel_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        node = hybrid_cluster.nodes[0].name
        executor.trace.record(
            0.0, "transfer.start", file="zzz", src=ReplicaCatalog.STORAGE,
            dst=node, size_mb=1.0, arrives=5.0,
        )
        executor.catalog.register("zzz", node)  # now=0 < arrives=5
        assert "catalog-time-travel" in checks(executor)

    def test_pinned_eviction_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        node = hybrid_cluster.nodes[0].name
        executor.stores[node].put("zzz", 1.0)
        executor.stores[node].pin("zzz")
        executor.trace.record(0.0, "store.evict", node=node, file="zzz")
        assert "pinned-evicted" in checks(executor)

    def test_clone_energy_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        device = hybrid_cluster.devices[0]
        executor._clones["c"] = {
            device.uid: _Clone(device=device, node=device.node.name,
                               dvfs_name=None)
        }
        executor.trace.record(
            0.0, "task.finish", task="c", device=device.uid,
            duration=2.0, energy_j=1e9,
        )
        assert "clone-energy" in checks(executor)

    def test_input_before_arrival_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        device = hybrid_cluster.devices[0]
        node = device.node.name
        executor.trace.record(
            0.0, "transfer.start", file="fin", src=ReplicaCatalog.STORAGE,
            dst=node, size_mb=1.0, arrives=9.0,
        )
        executor._clones["c"] = {
            device.uid: _Clone(device=device, node=node, dvfs_name=None)
        }
        executor.trace.record(
            0.0, "task.start", task="c", device=device.uid,
            attempt=1, duration=1.0,
        )
        assert "input-before-arrival" in checks(executor)

    def test_input_missing_fires(self, hybrid_cluster):
        # Fresh executor: the catalog has no replica of "fin" anywhere.
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        device = hybrid_cluster.devices[0]
        executor._clones["c"] = {
            device.uid: _Clone(device=device, node=device.node.name,
                               dvfs_name=None)
        }
        executor.trace.record(
            0.0, "task.start", task="c", device=device.uid,
            attempt=1, duration=1.0,
        )
        assert "input-missing" in checks(executor)

    def test_busy_overlap_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        result = executor.run()
        device = hybrid_cluster.devices[0]
        device.busy_intervals.append((0.0, 1.0))
        device.busy_intervals.append((0.5, 1.5))
        violations = audit_result(result, cluster=hybrid_cluster)
        assert "busy-overlap" in {v.check for v in violations}

    def test_record_sanity_fires_on_partial_progress(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        result = executor.run()
        result.records["c"].progress_fraction = 0.5
        violations = audit_result(result)
        assert "record-sanity" in {v.check for v in violations}

    def test_makespan_mismatch_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        result = executor.run()
        result.makespan = result.makespan + 1.0
        violations = audit_result(result)
        assert "makespan" in {v.check for v in violations}

    def test_dead_accounting_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        result = executor.run()
        result.dead_tasks.append("ghost")
        violations = audit_result(result)
        assert "dead-accounting" in {v.check for v in violations}

    def test_duplicate_finish_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        result = executor.run()
        finish = result.trace.of_kind("task.finish")[0]
        result.trace.record(
            result.makespan, "task.finish", **dict(finish.data)
        )
        violations = audit_result(result)
        assert "duplicate-finish" in {v.check for v in violations}

    def test_stalled_run_fires(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        result = executor.run()
        # Pretend the task never ran: queue is drained, nothing is dead,
        # yet work is still pending — the stall signature.
        result.records["c"].state = "pending"
        executor.sanitizer.violations.clear()
        executor.sanitizer.finalize(result)
        assert "stalled-run" in checks(executor)

    def test_strict_mode_raises(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster, strict=True)
        node = hybrid_cluster.nodes[0].name
        executor.stores[node].put("zzz", 1.0)
        executor.stores[node].pin("zzz")
        executor.trace.record(0.0, "store.evict", node=node, file="zzz")
        executor.stores[node].unpin("zzz")
        executor.stores[node].remove("zzz")
        with pytest.raises(SanitizerError, match="pinned-evicted"):
            executor.run()


class TestCleanRuns:
    """Stress configurations must pass a strict sanitizer."""

    @pytest.mark.parametrize("mode", ["static", "dynamic", "adaptive"])
    def test_faulty_replicated_run_is_clean(self, mode, hybrid_cluster):
        wf = montage(n_images=5, seed=7)
        result = run_workflow(
            wf, hybrid_cluster, scheduler="heft", mode=mode, seed=3,
            noise_cv=0.3, sanitize=True,
            fault_model=FaultModel(task_fault_rate=0.1, device_mtbf=30.0),
            recovery=RecoveryPolicy.replicated(k=2, retries=4),
        )
        assert result.success

    def test_checkpointed_run_is_clean(self, hybrid_cluster):
        wf = montage(n_images=5, seed=7)
        result = run_workflow(
            wf, hybrid_cluster, scheduler="heft", seed=0, noise_cv=0.2,
            sanitize=True,
            fault_model=FaultModel(task_fault_rate=0.5),
            recovery=RecoveryPolicy.checkpoint(interval_s=0.05, retries=30),
        )
        assert result.success

    def test_sanitizer_works_with_trace_storage_disabled(self, hybrid_cluster):
        from repro.sim.trace import TraceRecorder

        executor = make_executor(
            tiny_workflow(), hybrid_cluster, strict=True,
            trace=TraceRecorder(enabled=False),
        )
        result = executor.run()
        assert result.success
        assert executor.sanitizer.violations == []
        assert result.trace.of_kind("task.finish") == []  # storage off

    def test_detach_stops_auditing(self, hybrid_cluster):
        executor = make_executor(tiny_workflow(), hybrid_cluster)
        executor.sanitizer.detach()
        executor.records["c"].state = "running"  # would be illegal
        executor.records["c"].state = "pending"
        assert executor.sanitizer.violations == []


class TestCatalogTimeTravelRegression:
    """The executor bug the sanitizer was built around: replicas used to be
    registered (and stored) at transfer *reservation* time, letting other
    clones see — and even start on — data that had not arrived yet."""

    def two_cpu_one_node(self):
        cat = catalogue()
        return Cluster("uno", [
            NodeSpec.of("n0", [cat["cpu-std"], cat["cpu-std"]]),
        ])

    def shared_input_workflow(self):
        wf = Workflow("shared")
        wf.add_file(DataFile("db", 800.0, initial=True))
        wf.add_file(DataFile("oa", 0.1))
        wf.add_file(DataFile("ob", 0.1))
        wf.add_task(cpu_task("a", 10.0, inputs=("db",), outputs=("oa",)))
        wf.add_task(cpu_task("b", 10.0, inputs=("db",), outputs=("ob",)))
        return wf

    def test_consumers_wait_for_arrival(self):
        wf = self.shared_input_workflow()
        result = run_workflow(
            wf, self.two_cpu_one_node(), scheduler="heft", seed=1,
            sanitize=True,
        )
        assert result.success
        trace = result.execution.trace
        arrivals = {
            (r.get("dst"), r.get("file")): r.get("arrives")
            for r in trace.of_kind("transfer.start")
        }
        assert arrivals  # the shared input was staged at least once
        for rec in trace.of_kind("task.start"):
            for fname in wf.tasks[rec.get("task")].inputs:
                arrives = arrivals.get(("n0", fname))
                if arrives is not None:
                    assert rec.time >= arrives - 1e-9

    def test_concurrent_clones_join_inflight_transfer(self):
        wf = self.shared_input_workflow()
        result = run_workflow(
            wf, self.two_cpu_one_node(), scheduler="heft", seed=1,
            sanitize=True,
        )
        assert result.success
        db_pulls = [
            r for r in result.execution.trace.of_kind("transfer.start")
            if r.get("file") == "db"
        ]
        # Both consumers need "db" on n0 at t=0; the second clone joins
        # the in-flight staging instead of paying for a second transfer.
        assert len(db_pulls) == 1
        assert result.execution.staging_mb == pytest.approx(800.0)


class TestFailureSurfacing:
    """dead_tasks / success consistency under unrecoverable failures."""

    def test_exhausted_retries_reported_dead(self, hybrid_cluster):
        wf = tiny_workflow()
        result = run_workflow(
            wf, hybrid_cluster, scheduler="heft", seed=1, sanitize=True,
            fault_model=FaultModel(task_fault_rate=1e6),
            recovery=RecoveryPolicy(max_retries=1),
        )
        assert not result.success
        assert result.execution.dead_tasks == ["c"]

    def test_stranded_task_reported_dead(self):
        from repro.faults.models import DeviceFault
        from repro.platform.devices import DeviceClass
        from repro.workflows.task import Task

        cat = catalogue()
        cluster = Cluster("mixed", [
            NodeSpec.of("n0", [cat["cpu-std"], cat["gpu-std"]]),
        ])
        wf = Workflow("stranded")
        wf.add_file(DataFile("o", 0.1))
        wf.add_task(Task("t", 50.0,
                         affinity={DeviceClass.CPU: 1.0, DeviceClass.GPU: 0.0},
                         outputs=("o",)))
        wf.add_task(cpu_task("c", 1.0, inputs=("o",)))
        cluster.reset()
        plan = HeftScheduler().schedule(SchedulingContext(wf, cluster))
        executor = WorkflowExecutor(
            wf, cluster, StaticPolicy(plan), seed=1, sanitize=True,
        )
        # Kill the only CPU while "t" is underway; the GPU cannot run it.
        executor.sim.schedule_at(
            1e-4, executor._on_device_failure,
            DeviceFault(time=1e-4, device_uid="n0:cpu-std#0"),
        )
        result = executor.run()
        assert not result.success
        assert result.dead_tasks == ["t"]
        assert result.records["c"].state == "pending"
