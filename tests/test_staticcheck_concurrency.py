"""Concurrency/lifecycle hazard checker tests (mutation style).

worker-global-mutation, generator-pool-cleanup and unclassified-raise
each get seeded violations and blessed idioms; the taxonomy mirror is
pinned against the *live* ``classify_exception`` so the static table
cannot drift from the runtime behaviour it models.
"""

import os
import textwrap

from repro.staticcheck.callgraph import build_callgraph
from repro.staticcheck.concurrency import (
    STATIC_TAXONOMY,
    check_concurrency,
    check_generator_cleanup,
    check_thread_mutation,
    check_unclassified_raises,
    check_worker_mutation,
    classify_static,
)
from repro.staticcheck.lint import DEFAULT_ALLOWLIST, load_allowlist


def graph_for(tmp_path, files):
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(str(path))
    return build_callgraph(paths)


def checks(findings):
    return {f.check for f in findings}


class TestWorkerMutation:
    def test_global_rebind_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _COUNT = 0
            def execute_payload(p):
                global _COUNT
                _COUNT = _COUNT + 1
        """})
        fs = check_worker_mutation(g, worker_roots=["m.execute_payload"])
        assert checks(fs) == {"worker-global-mutation"}

    def test_container_mutation_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _SEEN = {}
            def record(key):
                _SEEN[key] = True
            def execute_payload(p):
                record(p)
        """})
        fs = check_worker_mutation(g, worker_roots=["m.execute_payload"])
        assert checks(fs) == {"worker-global-mutation"}

    def test_mutator_method_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _LOG = []
            def execute_payload(p):
                _LOG.append(p)
        """})
        fs = check_worker_mutation(g, worker_roots=["m.execute_payload"])
        assert checks(fs) == {"worker-global-mutation"}

    def test_class_attribute_store_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class Config:
                limit = 4
            def execute_payload(p):
                Config.limit = p
        """})
        fs = check_worker_mutation(g, worker_roots=["m.execute_payload"])
        assert checks(fs) == {"worker-global-mutation"}

    def test_local_shadow_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _SEEN = {}
            def execute_payload(p):
                _SEEN = {}
                _SEEN[p] = True
                return _SEEN
        """})
        assert check_worker_mutation(
            g, worker_roots=["m.execute_payload"]
        ) == []

    def test_read_only_access_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _LIMITS = {"mem": 4}
            def execute_payload(p):
                return _LIMITS.get(p)
        """})
        assert check_worker_mutation(
            g, worker_roots=["m.execute_payload"]
        ) == []

    def test_parent_side_mutation_is_not_flagged(self, tmp_path):
        # Mutation outside the worker-reachable cone is out of scope.
        g = graph_for(tmp_path, {"m.py": """
            _STATS = {}
            def parent_only(k):
                _STATS[k] = 1
            def execute_payload(p):
                return p
        """})
        assert check_worker_mutation(
            g, worker_roots=["m.execute_payload"]
        ) == []


class TestThreadMutation:
    def test_unlocked_global_mutation_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _SEQ = 0
            def do_GET(self):
                global _SEQ
                _SEQ = _SEQ + 1
        """})
        fs = check_thread_mutation(g, thread_roots=["m.do_GET"])
        assert checks(fs) == {"thread-shared-mutation"}

    def test_transitive_container_mutation_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _CACHE = {}
            def remember(k):
                _CACHE[k] = True
            def do_POST(self):
                remember(self)
        """})
        fs = check_thread_mutation(g, thread_roots=["m.do_POST"])
        assert checks(fs) == {"thread-shared-mutation"}

    def test_lock_guarded_mutation_is_clean(self, tmp_path):
        # Naming the guard in the `with` is the accepted static proof.
        g = graph_for(tmp_path, {"m.py": """
            import threading
            _SEQ = 0
            _lock = threading.Lock()
            def do_GET(self):
                global _SEQ
                with _lock:
                    _SEQ = _SEQ + 1
        """})
        assert check_thread_mutation(g, thread_roots=["m.do_GET"]) == []

    def test_self_lock_attribute_guard_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _LOG = []
            def do_GET(self):
                with self._lock:
                    _LOG.append(1)
        """})
        assert check_thread_mutation(g, thread_roots=["m.do_GET"]) == []

    def test_unrelated_with_block_still_fires(self, tmp_path):
        # A `with` that is not a lock (e.g. a file) is no guard.
        g = graph_for(tmp_path, {"m.py": """
            _LOG = []
            def do_GET(self):
                with open("x") as fh:
                    _LOG.append(fh)
        """})
        fs = check_thread_mutation(g, thread_roots=["m.do_GET"])
        assert checks(fs) == {"thread-shared-mutation"}

    def test_non_thread_code_is_out_of_scope(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _STATS = {}
            def parent_only(k):
                _STATS[k] = 1
            def do_GET(self):
                return 1
        """})
        assert check_thread_mutation(g, thread_roots=["m.do_GET"]) == []

    def test_shipped_default_roots_resolve(self):
        # The packaged service handlers/worker/store surface must stay
        # resolvable, or the check silently loses its real targets.
        import repro
        from repro.staticcheck.concurrency import default_thread_roots

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        roots = default_thread_roots(g)
        assert "repro.service.api.ServiceHandler.do_GET" in roots
        assert "repro.service.worker.ServiceWorker.run" in roots
        assert "repro.service.store.JobStore.submit" in roots

    def test_hashing_memos_are_deliberately_allowlisted(self):
        # Without the allowlist the memo stores ARE flagged from the
        # store's submit path — the waiver is live, not stale.
        import repro

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        findings = check_thread_mutation(g)
        blob = "\n".join(f.message for f in findings)
        assert "_part_json_memo" in blob and "_str_json_memo" in blob


class TestGeneratorCleanup:
    def test_unguarded_dispatching_generator_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def stream(pool, items):
                for rec in pool.imap_unordered(str, items):
                    yield rec
        """})
        fs = check_generator_cleanup(g)
        assert checks(fs) == {"generator-pool-cleanup"}

    def test_transitive_dispatch_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def submit(pool, items):
                return pool.imap_unordered(str, items)
            def stream(pool, items):
                for rec in submit(pool, items):
                    yield rec
        """})
        fs = check_generator_cleanup(g)
        assert checks(fs) == {"generator-pool-cleanup"}

    def test_try_finally_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def stream(pool, items):
                it = pool.imap_unordered(str, items)
                try:
                    for rec in it:
                        yield rec
                finally:
                    for _ in it:
                        pass
        """})
        assert check_generator_cleanup(g) == []

    def test_with_closing_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            from contextlib import closing
            def stream(pool, items):
                with closing(pool.imap_unordered(str, items)) as it:
                    for rec in it:
                        yield rec
        """})
        assert check_generator_cleanup(g) == []

    def test_non_generator_dispatcher_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def run_all(pool, items):
                return list(pool.map(str, items))
        """})
        assert check_generator_cleanup(g) == []


class TestUnclassifiedRaise:
    def test_bare_exception_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def execute_payload(p):
                if p is None:
                    raise Exception("bad cell")
        """})
        fs = check_unclassified_raises(g, worker_roots=["m.execute_payload"])
        assert checks(fs) == {"unclassified-raise"}

    def test_unknown_custom_class_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class WeirdFailure(Exception):
                pass
            def execute_payload(p):
                raise WeirdFailure(p)
        """})
        fs = check_unclassified_raises(g, worker_roots=["m.execute_payload"])
        assert checks(fs) == {"unclassified-raise"}

    def test_classified_builtin_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def execute_payload(p):
                if p < 0:
                    raise ValueError("negative seed")
                if p > 100:
                    raise TimeoutError("cell overran")
        """})
        assert check_unclassified_raises(
            g, worker_roots=["m.execute_payload"]
        ) == []

    def test_custom_class_with_classified_base_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class CellError(RuntimeError):
                pass
            class DeepError(CellError):
                pass
            def execute_payload(p):
                raise DeepError(p)
        """})
        assert check_unclassified_raises(
            g, worker_roots=["m.execute_payload"]
        ) == []

    def test_transient_marker_by_name_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class TransientCellError(Exception):
                pass
            def execute_payload(p):
                raise TransientCellError(p)
        """})
        assert check_unclassified_raises(
            g, worker_roots=["m.execute_payload"]
        ) == []

    def test_reraise_of_caught_object_is_skipped(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def execute_payload(p):
                try:
                    return p()
                except ValueError as exc:
                    raise exc
        """})
        assert check_unclassified_raises(
            g, worker_roots=["m.execute_payload"]
        ) == []

    def test_parent_side_raise_is_not_flagged(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def parent_only():
                raise Exception("not worker-reachable")
            def execute_payload(p):
                return p
        """})
        assert check_unclassified_raises(
            g, worker_roots=["m.execute_payload"]
        ) == []


class TestTaxonomyMirror:
    def test_static_table_matches_live_classifier(self):
        """The mirror must agree with classify_exception category-for-
        category on every builtin it claims to know."""
        import builtins

        from repro.runner.health import classify_exception

        for name, category in STATIC_TAXONOMY.items():
            cls = getattr(builtins, name, None)
            if cls is None:
                continue  # repo-local markers, checked below
            try:
                exc = cls("probe")
            except TypeError:
                continue
            assert classify_exception(exc) == category, name

        from repro.runner.health import TransientCellError
        from repro.sanitizer import SanitizerError

        assert classify_exception(
            TransientCellError("probe")
        ) == STATIC_TAXONOMY["TransientCellError"]
        assert classify_exception(
            SanitizerError("probe")
        ) == STATIC_TAXONOMY["SanitizerError"]

    def test_classify_static_walks_base_chain(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class A(ValueError):
                pass
            class B(A):
                pass
        """})
        assert classify_static(g, "m.B") == "permanent"
        assert classify_static(g, "m.A") == "permanent"
        assert classify_static(g, "NoSuchError") is None
        assert classify_static(g, "Exception") is None


class TestShippedWorkerCodeIsClean:
    def test_src_repro_concurrency_clean_under_allowlist(self):
        import repro

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        allow = load_allowlist(DEFAULT_ALLOWLIST)
        findings = check_concurrency(g, allow=allow)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_workflow_memo_is_deliberately_allowlisted(self):
        # Without the allowlist the memo mutation IS flagged — proving
        # the check sees it and the entry is a live, deliberate waiver.
        import repro

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        findings = check_worker_mutation(g)
        assert "_workflow_memo" in "\n".join(f.message for f in findings)
