"""Tests for energy governors and accounting."""

import pytest

from repro.energy.accounting import account_energy, _idle_gaps
from repro.energy.governor import AlwaysOnGovernor, DeepSleepGovernor
from repro.platform import presets
from repro.platform.power import PowerModel
from repro.sim.trace import TraceRecorder


class TestGovernors:
    def test_always_on_linear(self):
        g = AlwaysOnGovernor()
        pm = PowerModel(idle_watts=10.0, busy_watts=100.0)
        assert g.idle_energy(pm, 5.0) == 50.0
        assert g.idle_energy(pm, 0.0) == 0.0

    def test_always_on_negative_rejected(self):
        with pytest.raises(ValueError):
            AlwaysOnGovernor().idle_energy(PowerModel(), -1.0)

    def test_deep_sleep_below_threshold_is_idle(self):
        g = DeepSleepGovernor(threshold_s=2.0, wake_energy_j=5.0)
        pm = PowerModel(idle_watts=10.0, busy_watts=100.0, sleep_watts=1.0)
        assert g.idle_energy(pm, 1.5) == 15.0  # no sleep entered

    def test_deep_sleep_beyond_threshold(self):
        g = DeepSleepGovernor(threshold_s=2.0, wake_energy_j=5.0)
        pm = PowerModel(idle_watts=10.0, busy_watts=100.0, sleep_watts=1.0)
        # 2s idle @10 + 3s sleep @1 + 5 wake = 28
        assert g.idle_energy(pm, 5.0) == pytest.approx(28.0)

    def test_deep_sleep_saves_on_long_gaps(self):
        g = DeepSleepGovernor(threshold_s=1.0, wake_energy_j=2.0)
        on = AlwaysOnGovernor()
        pm = PowerModel(idle_watts=50.0, busy_watts=100.0, sleep_watts=0.5)
        assert g.idle_energy(pm, 100.0) < on.idle_energy(pm, 100.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DeepSleepGovernor(threshold_s=-1.0)


class TestIdleGaps:
    def test_gaps_with_leading_and_trailing(self):
        gaps = _idle_gaps([(2.0, 3.0), (5.0, 6.0)], 10.0)
        assert gaps == [2.0, 2.0, 4.0]

    def test_no_gaps_fully_busy(self):
        assert _idle_gaps([(0.0, 10.0)], 10.0) == []

    def test_empty_intervals_one_gap(self):
        assert _idle_gaps([], 7.0) == [7.0]


class TestAccounting:
    def test_idle_cluster_draws_idle_power(self):
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=2)
        report = account_energy(cluster, makespan=10.0)
        pm = cluster.devices[0].spec.power
        assert report.total_joules == pytest.approx(2 * pm.idle_watts * 10.0)
        assert report.busy_joules == 0.0

    def test_busy_intervals_counted(self):
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=1)
        d = cluster.devices[0]
        d.occupy(0, 0.0, 4.0)
        report = account_energy(cluster, makespan=10.0)
        pm = d.spec.power
        expected = pm.busy_watts * 4.0 + pm.idle_watts * 6.0
        assert report.total_joules == pytest.approx(expected)
        assert report.devices[d.uid].busy_seconds == 4.0
        assert report.devices[d.uid].idle_seconds == 6.0

    def test_trace_energy_overrides_busy_power(self):
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=1)
        d = cluster.devices[0]
        d.occupy(0, 0.0, 4.0)
        trace = TraceRecorder()
        trace.record(4.0, "task.finish", device=d.uid, energy_j=123.0)
        report = account_energy(cluster, makespan=10.0, trace=trace)
        assert report.devices[d.uid].busy_joules == 123.0

    def test_governor_applied_to_gaps(self):
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=1)
        d = cluster.devices[0]
        d.occupy(0, 0.0, 1.0)
        on = account_energy(cluster, makespan=100.0,
                            governor=AlwaysOnGovernor())
        sleepy = account_energy(cluster, makespan=100.0,
                                governor=DeepSleepGovernor(threshold_s=1.0))
        assert sleepy.idle_joules < on.idle_joules

    def test_edp_and_average_power(self):
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=1)
        report = account_energy(cluster, makespan=10.0)
        assert report.edp == pytest.approx(report.total_joules * 10.0)
        assert report.average_power() == pytest.approx(report.total_joules / 10.0)

    def test_zero_makespan(self):
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=1)
        report = account_energy(cluster, makespan=0.0)
        assert report.total_joules == 0.0
        assert report.average_power() == 0.0

    def test_intervals_clipped_at_makespan(self):
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=1)
        d = cluster.devices[0]
        d.occupy(0, 0.0, 100.0)
        report = account_energy(cluster, makespan=10.0)
        assert report.devices[d.uid].busy_seconds == 10.0
        assert report.devices[d.uid].idle_seconds == 0.0
