"""Algorithm-specific behavioural tests."""

import pytest

import repro.core  # noqa: F401
from repro.platform import presets
from repro.schedulers import by_name
from repro.schedulers.base import SchedulingContext
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler
from repro.schedulers.genetic import GeneticScheduler
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.peft import PeftScheduler
from repro.workflows.generators import ligo_inspiral, montage, random_dag
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, cpu_task, gpu_task


@pytest.fixture(scope="module")
def ctx():
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1)
    return SchedulingContext(ligo_inspiral(n_segments=6, group_size=3, seed=1), cluster)


class TestHeft:
    def test_insertion_never_hurts(self, ctx):
        with_ins = HeftScheduler(allow_insertion=True).schedule(ctx).makespan
        without = HeftScheduler(allow_insertion=False).schedule(ctx).makespan
        assert with_ins <= without + 1e-9

    def test_serial_chain_on_one_fast_device(self):
        """A pure chain should stay on a single fast device (no comm)."""
        wf = Workflow("chain")
        prev = None
        for i in range(5):
            out = wf.add_file(DataFile(f"f{i}", 100.0))
            inputs = (prev,) if prev else ()
            wf.add_task(gpu_task(f"t{i}", 500.0, inputs=inputs,
                                 outputs=(out.name,)))
            prev = out.name
        # terminal consumer for validation cleanliness
        wf.add_task(cpu_task("sink", 1.0, inputs=(prev,)))
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        schedule = HeftScheduler().schedule(SchedulingContext(wf, cluster))
        chain_devices = {schedule.device_of(f"t{i}") for i in range(5)}
        assert len(chain_devices) == 1
        assert "gpu" in next(iter(chain_devices))


class TestPeft:
    def test_oct_exit_tasks_zero(self, ctx):
        table = PeftScheduler()._optimistic_cost_table(ctx)
        for name in ctx.workflow.exit_tasks():
            assert all(v == 0.0 for v in table[name].values())

    def test_oct_nonnegative_everywhere(self, ctx):
        table = PeftScheduler()._optimistic_cost_table(ctx)
        for row in table.values():
            assert all(v >= 0.0 for v in row.values())

    def test_oct_parent_geq_best_child(self, ctx):
        """OCT of a task is at least the best OCT+exec of each child."""
        table = PeftScheduler()._optimistic_cost_table(ctx)
        wf = ctx.workflow
        for name in wf.tasks:
            for device in ctx.eligible_devices(name):
                for child in wf.successors(name):
                    best_child = min(
                        table[child][d.uid] + ctx.exec_time(child, d.uid)
                        for d in ctx.eligible_devices(child)
                    )
                    assert table[name][device.uid] >= best_child - 1e-9


class TestCpop:
    def test_critical_path_pinned_when_possible(self):
        # CPU-only chain: every device is eligible; CPOP must pin the
        # whole chain to one device.
        wf = Workflow("chain")
        prev = None
        for i in range(4):
            out = wf.add_file(DataFile(f"f{i}", 50.0))
            inputs = (prev,) if prev else ()
            wf.add_task(cpu_task(f"t{i}", 100.0, inputs=inputs,
                                 outputs=(out.name,)))
            prev = out.name
        wf.add_task(cpu_task("sink", 0.1, inputs=(prev,)))
        cluster = presets.cpu_cluster(nodes=2, cores_per_node=2)
        schedule = by_name("cpop").schedule(SchedulingContext(wf, cluster))
        devices = {schedule.device_of(f"t{i}") for i in range(4)}
        assert len(devices) == 1


class TestGenetic:
    def test_never_worse_than_heft_seed(self):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        ctx = SchedulingContext(random_dag(n_tasks=30, ccr=1.0, seed=2), cluster)
        heft = HeftScheduler().schedule(ctx).makespan
        ga = GeneticScheduler(population=10, generations=5, seed=1).schedule(ctx)
        assert ga.makespan <= heft + 1e-9

    def test_zero_generations_reproduces_heft(self):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        ctx = SchedulingContext(montage(n_images=5, seed=2), cluster)
        heft = HeftScheduler().schedule(ctx).makespan
        ga = GeneticScheduler(population=4, generations=0, seed=0).schedule(ctx)
        assert ga.makespan <= heft + 1e-9

    def test_bad_population_rejected(self):
        with pytest.raises(ValueError):
            GeneticScheduler(population=1)

    def test_seed_determinism(self):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        ctx = SchedulingContext(montage(n_images=5, seed=2), cluster)
        a = GeneticScheduler(population=8, generations=4, seed=3).schedule(ctx)
        b = GeneticScheduler(population=8, generations=4, seed=3).schedule(ctx)
        assert a.makespan == b.makespan


class TestEnergyAware:
    def test_alpha_one_matches_heft_closely(self):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2, dvfs=False)
        ctx = SchedulingContext(montage(n_images=6, seed=1), cluster)
        heft = HeftScheduler().schedule(ctx).makespan
        ea = EnergyAwareHeftScheduler(alpha=1.0, use_dvfs=False).schedule(ctx)
        assert ea.makespan == pytest.approx(heft, rel=0.01)

    def test_lower_alpha_saves_planned_energy(self):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2, dvfs=True)
        ctx = SchedulingContext(montage(n_images=6, seed=1), cluster)

        def planned_energy(schedule):
            total = 0.0
            for name, a in schedule.assignments.items():
                device = cluster.device(a.device)
                state = None
                if name in schedule.dvfs_choice:
                    state = device.spec.power.state(schedule.dvfs_choice[name])
                total += device.spec.power.busy_power(state) * a.duration
            return total

        fast = EnergyAwareHeftScheduler(alpha=1.0).schedule(ctx)
        green = EnergyAwareHeftScheduler(alpha=0.1).schedule(ctx)
        assert planned_energy(green) < planned_energy(fast)
        assert green.makespan >= fast.makespan - 1e-9

    def test_dvfs_choices_recorded(self):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2, dvfs=True)
        ctx = SchedulingContext(montage(n_images=6, seed=1), cluster)
        green = EnergyAwareHeftScheduler(alpha=0.0).schedule(ctx)
        assert green.dvfs_choice  # at least one task slowed down

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            EnergyAwareHeftScheduler(alpha=1.5)


class TestRoundRobinAndRandom:
    def test_roundrobin_spreads_load(self):
        cluster = presets.cpu_cluster(nodes=2, cores_per_node=2)
        ctx = SchedulingContext(random_dag(n_tasks=40, ccr=0.0, seed=1), cluster)
        schedule = by_name("roundrobin").schedule(ctx)
        used = schedule.devices_used()
        assert len(used) == 4  # every CPU touched

    def test_random_seed_changes_placement(self):
        from repro.schedulers.randomsched import RandomScheduler

        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        ctx = SchedulingContext(montage(n_images=6, seed=1), cluster)
        s1 = RandomScheduler(seed=1).schedule(ctx)
        s2 = RandomScheduler(seed=2).schedule(ctx)
        placements1 = {t: a.device for t, a in s1.assignments.items()}
        placements2 = {t: a.device for t, a in s2.assignments.items()}
        assert placements1 != placements2
