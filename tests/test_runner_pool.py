"""CampaignRunner semantics: order, dedupe, memoization, parallel equality."""

from __future__ import annotations

import pytest

from repro.experiments.common import make_job, make_timing_job, preset_spec
from repro.runner import CampaignRunner, ResultCache
from repro.runner.context import get_runner, set_runner, use_runner
from repro.workflows.generators import montage

CLUSTER = preset_spec("hybrid", nodes=2, cores_per_node=2, gpus_per_node=1)


def _jobs(schedulers=("heft", "peft", "minmin"), seed=5):
    wf = montage(size=12, seed=seed)
    return [
        make_job(wf, CLUSTER, scheduler=s, seed=seed, noise_cv=0.1,
                 label=f"pool-test:{s}")
        for s in schedulers
    ]


def test_records_come_back_in_submission_order():
    """Each record pairs with its job regardless of execution internals."""
    runner = CampaignRunner(jobs=1)
    jobs = _jobs()
    records = runner.run_sims(jobs)
    assert len(records) == len(jobs)
    # Different schedulers on the same workflow give different makespans
    # (at least one pair), proving records weren't scrambled into one.
    reversed_records = CampaignRunner(jobs=1).run_sims(list(reversed(jobs)))
    assert [r.makespan for r in reversed_records] == [
        r.makespan for r in reversed(records)
    ]


def test_duplicate_cells_simulate_once():
    """Identical cells in one batch run once and fan out to every index."""
    runner = CampaignRunner(jobs=1)
    job = _jobs(schedulers=("heft",))[0]
    records = runner.run_sims([job, job, job])
    assert runner.simulated == 1
    assert records[0] == records[1] == records[2]


def test_warm_cache_rerun_simulates_nothing(tmp_path):
    """A second run over a warm cache recalls every record bit-identically."""
    jobs = _jobs()
    cold = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    cold_records = cold.run_sims(jobs)
    assert cold.simulated == len(jobs)

    warm = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    warm_records = warm.run_sims(jobs)
    assert warm.simulated == 0
    assert warm.cache.stats.hits == len(jobs)
    assert warm_records == cold_records


def test_parallel_equals_serial():
    """jobs=2 returns records identical to jobs=1 (the core contract)."""
    jobs = _jobs()
    serial = CampaignRunner(jobs=1).run_sims(jobs)
    parallel = CampaignRunner(jobs=2).run_sims(jobs)
    assert parallel == serial


def test_parallel_warm_cache_round_trip(tmp_path):
    """Records cached by a parallel run satisfy a serial warm rerun."""
    jobs = _jobs()
    cold = CampaignRunner(jobs=2, cache=ResultCache(str(tmp_path)))
    cold_records = cold.run_sims(jobs)
    warm = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    assert warm.run_sims(jobs) == cold_records
    assert warm.simulated == 0


def test_timing_jobs_are_never_cached(tmp_path):
    """Timing cells bypass the cache entirely (wall-clock is not content)."""
    cache = ResultCache(str(tmp_path))
    runner = CampaignRunner(jobs=1, cache=cache)
    wf = montage(size=12, seed=5)
    tjob = make_timing_job(wf, CLUSTER, scheduler="heft", label="t")
    r1 = runner.run_timings([tjob])
    r2 = runner.run_timings([tjob])
    assert len(cache) == 0
    assert r1[0].n_tasks == r2[0].n_tasks == wf.n_tasks
    assert r1[0].elapsed_s > 0


def test_failed_cell_raises_with_label():
    """A broken cell surfaces its label in the error, not a bare traceback."""
    bad = make_job(
        montage(size=12, seed=5), CLUSTER, scheduler="heft",
        seed=5, bogus_config_field=1, label="broken-cell",
    )
    with pytest.raises(RuntimeError, match="broken-cell"):
        CampaignRunner(jobs=1).run_sims([bad])


def test_jobs_must_be_positive():
    """jobs=0 is a configuration error, not silent serial."""
    with pytest.raises(ValueError):
        CampaignRunner(jobs=0)


def test_empty_batch_is_a_noop():
    """Zero cells: no pool spin-up, empty result."""
    runner = CampaignRunner(jobs=4)
    assert runner.run_sims([]) == []
    assert runner.run_timings([]) == []


def test_persistent_pool_is_reused_across_batches():
    """The pool spawns once and serves every subsequent parallel batch."""
    with CampaignRunner(jobs=2) as runner:
        assert runner._pool is None  # lazily spawned
        runner.run_sims(_jobs())
        pool = runner._pool
        assert pool is not None
        runner.run_sims(_jobs(seed=6))
        assert runner._pool is pool  # same workers, no respawn


def test_close_releases_the_pool_and_cache(tmp_path):
    """close() tears down workers and flushes the cache; it is idempotent."""
    runner = CampaignRunner(jobs=2, cache=ResultCache(str(tmp_path)))
    jobs = _jobs()
    runner.run_sims(jobs)
    assert runner._pool is not None
    runner.close()
    assert runner._pool is None
    runner.close()  # idempotent
    # Everything the run produced was synced to the shard index.
    warm = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    assert warm.run_sims(jobs) and warm.simulated == 0


def test_context_manager_closes_on_exit():
    with CampaignRunner(jobs=2) as runner:
        runner.run_sims(_jobs())
        assert runner._pool is not None
    assert runner._pool is None


def test_run_sims_iter_streams_every_index_once(tmp_path):
    """The streaming iterator yields each submission index exactly once."""
    jobs = _jobs()
    runner = CampaignRunner(jobs=2, cache=ResultCache(str(tmp_path)))
    seen = dict(runner.run_sims_iter(jobs))
    assert sorted(seen) == list(range(len(jobs)))
    # A warm streaming pass yields the identical records (hits first).
    warm = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    assert dict(warm.run_sims_iter(jobs)) == seen
    assert warm.simulated == 0


def test_run_sims_ordered_yields_submission_order():
    jobs = _jobs()
    with CampaignRunner(jobs=2) as runner:
        indexes = [i for i, _ in runner.run_sims_ordered(jobs)]
    assert indexes == list(range(len(jobs)))


def test_streaming_matches_batch_records():
    """run_sims / run_sims_iter / run_sims_ordered agree record-for-record."""
    jobs = _jobs()
    batch = CampaignRunner(jobs=1).run_sims(jobs)
    with CampaignRunner(jobs=2) as runner:
        streamed = dict(runner.run_sims_iter(jobs))
        ordered = list(runner.run_sims_ordered(jobs))
    assert [streamed[i] for i in range(len(jobs))] == batch
    assert [r for _, r in ordered] == batch


def test_chunksize_env_override(monkeypatch):
    """REPRO_CHUNKSIZE forces the dispatch chunk size; default is adaptive."""
    runner = CampaignRunner(jobs=4)
    assert runner._chunksize(256) == max(1, min(32, 256 // 8))
    monkeypatch.setenv("REPRO_CHUNKSIZE", "7")
    assert runner._chunksize(256) == 7
    monkeypatch.setenv("REPRO_CHUNKSIZE", "0")
    assert runner._chunksize(256) == 1  # clamped to a sane floor


def test_use_runner_scopes_the_active_runner():
    """use_runner installs and restores the ambient runner."""
    outer = get_runner()
    inner = CampaignRunner(jobs=1)
    with use_runner(inner):
        assert get_runner() is inner
    assert get_runner() is outer


def test_set_runner_none_resets_to_env_default(monkeypatch):
    """set_runner(None) + REPRO_JOBS rebuilds the default lazily."""
    monkeypatch.setenv("REPRO_JOBS", "3")
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    previous = get_runner()
    try:
        set_runner(None)
        runner = get_runner()
        assert runner.jobs == 3
        assert runner.cache is None
    finally:
        set_runner(previous)
