"""Tests for workflow validation."""

import pytest

from repro.platform.devices import DeviceClass
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task, cpu_task
from repro.workflows.validate import ValidationError, find_problems, validate_workflow


def valid_wf():
    wf = Workflow("ok")
    wf.add_file(DataFile("in", 1.0, initial=True))
    wf.add_file(DataFile("out", 1.0))
    wf.add_task(cpu_task("t", 1.0, inputs=("in",), outputs=("out",)))
    return wf


class TestValidation:
    def test_valid_workflow_passes(self):
        validate_workflow(valid_wf())

    def test_empty_workflow_fails(self):
        with pytest.raises(ValidationError):
            validate_workflow(Workflow("empty"))

    def test_consumed_never_produced(self):
        wf = Workflow("w")
        wf.add_file(DataFile("ghost", 1.0))  # not initial, no producer
        wf.add_task(cpu_task("t", 1.0, inputs=("ghost",)))
        problems = find_problems(wf)
        assert any("never produced" in p for p in problems)

    def test_registered_but_unused_file(self):
        wf = valid_wf()
        wf.add_file(DataFile("orphan", 1.0))
        problems = find_problems(wf)
        assert any("unused" in p for p in problems)

    def test_cycle_via_control_edges(self):
        wf = Workflow("w")
        wf.add_file(DataFile("a2b", 1.0))
        wf.add_task(cpu_task("a", 1.0, outputs=("a2b",)))
        wf.add_task(cpu_task("b", 1.0, inputs=("a2b",)))
        wf.add_control_edge("b", "a")
        problems = find_problems(wf)
        assert any("cycle" in p for p in problems)

    def test_no_eligible_class(self):
        wf = Workflow("w")
        wf.add_file(DataFile("o", 1.0))
        wf.add_task(Task("t", 1.0, affinity={DeviceClass.CPU: 0.0},
                         outputs=("o",)))
        wf.add_task(cpu_task("c", 1.0, inputs=("o",)))
        problems = find_problems(wf)
        assert any("no device class" in p for p in problems)

    def test_zero_work_no_data_role(self):
        wf = valid_wf()
        wf.add_task(cpu_task("noop", 0.0))
        problems = find_problems(wf)
        assert any("zero work" in p for p in problems)

    def test_error_lists_all_problems(self):
        wf = Workflow("w")
        wf.add_file(DataFile("orphan", 1.0))
        wf.add_file(DataFile("ghost", 1.0))
        wf.add_task(cpu_task("t", 1.0, inputs=("ghost",)))
        with pytest.raises(ValidationError) as exc:
            validate_workflow(wf)
        assert len(exc.value.problems) >= 2

    def test_all_generators_validate(self):
        from repro.workflows.generators import ALL_GENERATORS

        for name, gen in ALL_GENERATORS.items():
            validate_workflow(gen(seed=1))
