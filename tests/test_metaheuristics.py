"""Tests for the annealing and lookahead-HEFT schedulers."""

import pytest

from repro.platform import presets
from repro.schedulers.annealing import SimulatedAnnealingScheduler
from repro.schedulers.base import SchedulingContext
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.lookahead import LookaheadHeftScheduler
from repro.workflows.generators import ligo_inspiral, montage, random_dag


@pytest.fixture(scope="module")
def ctx():
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
    return SchedulingContext(random_dag(n_tasks=30, ccr=1.0, seed=4), cluster)


class TestAnnealing:
    def test_never_worse_than_heft_seed(self, ctx):
        heft = HeftScheduler().schedule(ctx).makespan
        sa = SimulatedAnnealingScheduler(iterations=150, seed=1).schedule(ctx)
        assert sa.makespan <= heft + 1e-9

    def test_zero_iterations_reproduces_heft(self, ctx):
        heft = HeftScheduler().schedule(ctx).makespan
        sa = SimulatedAnnealingScheduler(iterations=0).schedule(ctx)
        assert sa.makespan == pytest.approx(heft)

    def test_deterministic(self, ctx):
        a = SimulatedAnnealingScheduler(iterations=100, seed=5).schedule(ctx)
        b = SimulatedAnnealingScheduler(iterations=100, seed=5).schedule(ctx)
        assert a.makespan == b.makespan

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(iterations=-1)
        with pytest.raises(ValueError):
            SimulatedAnnealingScheduler(cooling=1.0)

    def test_more_iterations_never_hurt(self, ctx):
        short = SimulatedAnnealingScheduler(iterations=50, seed=2).schedule(ctx)
        long = SimulatedAnnealingScheduler(iterations=400, seed=2).schedule(ctx)
        assert long.makespan <= short.makespan + 1e-9


class TestLookaheadHeft:
    @pytest.mark.parametrize("gen,kwargs", [
        (montage, {"n_images": 6}),
        (ligo_inspiral, {"n_segments": 6, "group_size": 3}),
    ])
    def test_valid_on_suites(self, gen, kwargs):
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        wf = gen(seed=2, **kwargs)
        context = SchedulingContext(wf, cluster)
        schedule = LookaheadHeftScheduler().schedule(context)
        schedule.validate_against(wf)

    def test_competitive_with_heft(self, ctx):
        la = LookaheadHeftScheduler().schedule(ctx).makespan
        heft = HeftScheduler().schedule(ctx).makespan
        assert la <= heft * 1.25

    def test_slower_to_schedule_than_heft(self, ctx):
        import time

        t0 = time.perf_counter()
        HeftScheduler().schedule(ctx)
        heft_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        LookaheadHeftScheduler().schedule(ctx)
        la_time = time.perf_counter() - t0
        assert la_time > heft_time
