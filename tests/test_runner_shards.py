"""JSONL shard sink: headers, rotation, replay, crash tolerance."""

from __future__ import annotations

import json
import os

import pytest

from repro.runner.shards import (
    SHARD_SCHEMA,
    ShardWriter,
    iter_shard_records,
    shard_paths,
)

RECORD = {"makespan": 1.5, "success": True}


def test_append_then_replay_round_trips(tmp_path):
    root = str(tmp_path / "shards")
    with ShardWriter(root) as writer:
        writer.append(0, RECORD)
        writer.append(1, {"makespan": 2.0})
    assert list(iter_shard_records(root)) == [
        (0, RECORD),
        (1, {"makespan": 2.0}),
    ]


def test_every_shard_starts_with_schema_header(tmp_path):
    root = str(tmp_path / "shards")
    with ShardWriter(root, records_per_shard=2) as writer:
        for i in range(5):
            writer.append(i, RECORD)
    paths = shard_paths(root)
    assert len(paths) == 3  # 2 + 2 + 1
    for ordinal, path in enumerate(paths):
        with open(path, encoding="utf-8") as fh:
            header = json.loads(fh.readline())
        assert header == {"schema": SHARD_SCHEMA, "shard": ordinal}


def test_rotation_preserves_order_across_shards(tmp_path):
    root = str(tmp_path / "shards")
    with ShardWriter(root, records_per_shard=3) as writer:
        for i in range(10):
            writer.append(i, {"v": float(i)})
    got = list(iter_shard_records(root))
    assert [i for i, _ in got] == list(range(10))
    assert writer.written == 10


def test_completion_order_indexes_are_preserved_verbatim(tmp_path):
    """The sink stores whatever indexes arrive; 'i' is authoritative."""
    root = str(tmp_path / "shards")
    with ShardWriter(root) as writer:
        for i in (3, 0, 2, 1):
            writer.append(i, {"v": float(i)})
    assert [i for i, _ in iter_shard_records(root)] == [3, 0, 2, 1]


def test_reopened_writer_starts_a_fresh_shard(tmp_path):
    """A resumed campaign appends new shards, never rewrites old ones."""
    root = str(tmp_path / "shards")
    with ShardWriter(root) as writer:
        writer.append(0, RECORD)
    with ShardWriter(root) as writer:
        writer.append(1, RECORD)
    paths = shard_paths(root)
    assert len(paths) == 2
    assert [i for i, _ in iter_shard_records(root)] == [0, 1]


def test_torn_trailing_line_is_tolerated(tmp_path):
    """A writer killed mid-append loses only the torn record."""
    root = str(tmp_path / "shards")
    with ShardWriter(root) as writer:
        writer.append(0, RECORD)
        writer.append(1, RECORD)
    path = shard_paths(root)[0]
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"i": 2, "r": {"makesp')  # killed mid-write
    assert [i for i, _ in iter_shard_records(root)] == [0, 1]


def test_foreign_file_with_wrong_schema_is_skipped(tmp_path):
    root = str(tmp_path / "shards")
    os.makedirs(root)
    with open(os.path.join(root, "records-00000.jsonl"), "w") as fh:
        fh.write('{"schema": "someone-elses/v9"}\n{"i": 0, "r": {}}\n')
    with ShardWriter(root) as writer:
        writer.append(7, RECORD)
    assert list(iter_shard_records(root)) == [(7, RECORD)]


def test_empty_or_missing_root_replays_nothing(tmp_path):
    assert list(iter_shard_records(str(tmp_path / "nope"))) == []
    assert shard_paths(str(tmp_path / "nope")) == []


def test_flush_every_makes_records_durable_without_close(tmp_path):
    root = str(tmp_path / "shards")
    writer = ShardWriter(root, flush_every=2)
    writer.append(0, RECORD)
    writer.append(1, RECORD)  # triggers flush
    writer.append(2, RECORD)  # buffered
    # Simulated crash: read the file without closing the writer.
    durable = [i for i, _ in iter_shard_records(root)]
    assert durable[:2] == [0, 1]
    writer.close()
    assert [i for i, _ in iter_shard_records(root)] == [0, 1, 2]


def test_records_per_shard_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        ShardWriter(str(tmp_path), records_per_shard=0)
