"""Tests for the execution-time model."""

import numpy as np
import pytest

from repro.platform.devices import DeviceClass, catalogue
from repro.platform.perfmodel import ExecutionModel
from repro.platform.power import DvfsState
from repro.workflows.task import Task, accelerable_task, cpu_task, gpu_task


@pytest.fixture
def model():
    return ExecutionModel()


@pytest.fixture
def cat():
    return catalogue()


class TestEligibility:
    def test_cpu_task_only_on_cpu(self, model, cat):
        t = cpu_task("t", 100.0)
        assert model.eligible(t, cat["cpu-std"])
        assert not model.eligible(t, cat["gpu-std"])

    def test_gpu_task_on_both(self, model, cat):
        t = gpu_task("t", 100.0)
        assert model.eligible(t, cat["cpu-std"])
        assert model.eligible(t, cat["gpu-std"])

    def test_cpu_opt_out(self, model, cat):
        t = Task("t", 100.0, affinity={DeviceClass.CPU: 0.0,
                                       DeviceClass.GPU: 5.0})
        assert not model.eligible(t, cat["cpu-std"])
        assert model.eligible(t, cat["gpu-std"])


class TestEstimate:
    def test_basic_formula(self, model, cat):
        t = cpu_task("t", 100.0)
        # cpu-std: 50 Gop/s, zero CPU overhead
        assert model.estimate(t, cat["cpu-std"]) == pytest.approx(2.0)

    def test_affinity_scales_speed(self, model, cat):
        t = gpu_task("t", 700.0, gpu_speedup=10.0)
        # gpu-std: 700 Gop/s * 10 affinity + 0.05 launch overhead
        assert model.estimate(t, cat["gpu-std"]) == pytest.approx(
            0.05 + 700.0 / 7000.0
        )

    def test_ineligible_estimate_raises(self, model, cat):
        t = cpu_task("t", 100.0)
        with pytest.raises(ValueError):
            model.estimate(t, cat["gpu-std"])

    def test_overhead_hurts_short_tasks(self, model, cat):
        short = gpu_task("s", 1.0, gpu_speedup=10.0)
        # CPU: 1/50 = 0.02 s.  GPU: 0.05 + tiny -> GPU slower.
        assert model.estimate(short, cat["cpu-std"]) < model.estimate(
            short, cat["gpu-std"]
        )

    def test_overhead_amortized_for_long_tasks(self, model, cat):
        long = gpu_task("l", 5000.0, gpu_speedup=10.0)
        assert model.estimate(long, cat["gpu-std"]) < model.estimate(
            long, cat["cpu-std"]
        )

    def test_dvfs_stretches_time(self, model, cat):
        t = cpu_task("t", 100.0)
        state = DvfsState("half", freq_scale=0.5, power_scale=0.2)
        assert model.estimate(t, cat["cpu-std"], state) == pytest.approx(4.0)

    def test_best_and_mean_estimates(self, model, cat):
        t = gpu_task("t", 700.0, gpu_speedup=10.0)
        specs = [cat["cpu-std"], cat["gpu-std"]]
        best = model.best_estimate(t, specs)
        mean = model.mean_estimate(t, specs)
        assert best <= mean
        assert best == pytest.approx(model.estimate(t, cat["gpu-std"]))

    def test_best_estimate_no_eligible_raises(self, model, cat):
        t = cpu_task("t", 100.0)
        with pytest.raises(ValueError):
            model.best_estimate(t, [cat["gpu-std"]])


class TestSampling:
    def test_zero_noise_returns_estimate(self, cat):
        model = ExecutionModel(noise_cv=0.0)
        t = cpu_task("t", 100.0)
        rng = np.random.default_rng(0)
        assert model.sample(t, cat["cpu-std"], rng) == model.estimate(
            t, cat["cpu-std"]
        )

    def test_noise_mean_preserving(self, cat):
        model = ExecutionModel(noise_cv=0.5)
        t = cpu_task("t", 100.0)
        rng = np.random.default_rng(1)
        samples = [model.sample(t, cat["cpu-std"], rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_samples_always_positive(self, cat):
        model = ExecutionModel(noise_cv=2.0)
        t = cpu_task("t", 1.0)
        rng = np.random.default_rng(2)
        assert all(
            model.sample(t, cat["cpu-std"], rng) > 0 for _ in range(200)
        )

    def test_perturbed_estimate_noop_without_error(self, cat):
        model = ExecutionModel(estimate_error_cv=0.0)
        t = cpu_task("t", 100.0)
        rng = np.random.default_rng(3)
        assert model.perturbed_estimate(t, cat["cpu-std"], rng) == 2.0

    def test_perturbed_estimate_varies_with_error(self, cat):
        model = ExecutionModel(estimate_error_cv=1.0)
        t = cpu_task("t", 100.0)
        rng = np.random.default_rng(4)
        draws = {model.perturbed_estimate(t, cat["cpu-std"], rng)
                 for _ in range(5)}
        assert len(draws) == 5
