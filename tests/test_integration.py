"""End-to-end integration scenarios across the whole stack."""

import pytest

from repro import compare_schedulers, run_workflow
from repro.analysis.metrics import speedup
from repro.energy.governor import DeepSleepGovernor
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform import presets
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler
from repro.workflows.generators import (
    cybershake,
    epigenomics,
    ligo_inspiral,
    ml_pipeline,
    montage,
    sipht,
)
from repro.workflows.serialize import workflow_from_json, workflow_to_json


class TestSuitesEndToEnd:
    @pytest.mark.parametrize("gen", [
        montage, cybershake, epigenomics, ligo_inspiral, sipht, ml_pipeline,
    ])
    def test_every_suite_runs_on_every_mode(self, gen):
        wf = gen(size=25, seed=1)
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        for mode in ("static", "dynamic", "adaptive"):
            result = run_workflow(wf, cluster, mode=mode, seed=1,
                                  noise_cv=0.2)
            assert result.success, f"{wf.name} failed in {mode}"

    def test_serialized_workflow_runs_identically(self):
        wf = montage(n_images=6, seed=3)
        clone = workflow_from_json(workflow_to_json(wf))
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        r1 = run_workflow(wf, cluster, seed=2, noise_cv=0.3)
        r2 = run_workflow(clone, cluster, seed=2, noise_cv=0.3)
        assert r1.makespan == pytest.approx(r2.makespan)


class TestHeterogeneityStory:
    def test_gpus_speed_up_accelerable_suite(self):
        wf = cybershake(n_variations=8, seed=2)
        cpu = presets.cpu_cluster(nodes=2, cores_per_node=4)
        hybrid = presets.hybrid_cluster(nodes=2, cores_per_node=4,
                                        gpus_per_node=1)
        slow = run_workflow(wf, cpu, seed=1).makespan
        fast = run_workflow(wf, hybrid, seed=1).makespan
        assert fast < slow / 2

    def test_parallel_speedup_positive(self):
        wf = montage(size=60, seed=2)
        cluster = presets.hybrid_cluster(nodes=4)
        result = run_workflow(wf, cluster, seed=1)
        assert speedup(result.makespan, wf, cluster) > 2.0

    def test_informed_beats_naive_end_to_end(self):
        wf = ligo_inspiral(size=40, seed=2)
        cluster = presets.hybrid_cluster(nodes=2)
        results = compare_schedulers(
            wf, cluster, ["hdws", "roundrobin"], seed=1, noise_cv=0.1
        )
        assert results["hdws"].makespan < results["roundrobin"].makespan


class TestEnergyStory:
    def test_energy_aware_saves_energy_end_to_end(self):
        wf = ligo_inspiral(size=30, seed=1)
        governor = DeepSleepGovernor(threshold_s=0.5)
        fast_cluster = presets.hybrid_cluster(nodes=2, dvfs=True)
        green_cluster = presets.hybrid_cluster(nodes=2, dvfs=True)
        fast = run_workflow(
            wf, fast_cluster, scheduler=EnergyAwareHeftScheduler(alpha=1.0),
            seed=1, governor=governor,
        )
        green = run_workflow(
            wf, green_cluster, scheduler=EnergyAwareHeftScheduler(alpha=0.1),
            seed=1, governor=governor,
        )
        assert green.energy.total_joules < fast.energy.total_joules
        assert green.makespan >= fast.makespan * 0.95


class TestFaultStory:
    def test_campaign_survives_hostile_environment(self):
        wf = cybershake(n_variations=8, seed=3).scaled(2.0)
        cluster = presets.hybrid_cluster(nodes=4)
        result = run_workflow(
            wf, cluster, seed=5, noise_cv=0.2,
            fault_model=FaultModel(task_fault_rate=0.1, device_mtbf=120.0),
            recovery=RecoveryPolicy(max_retries=30, archive_outputs=True,
                                    checkpoint_interval_s=1.0),
        )
        assert result.success

    def test_faultier_is_slower(self):
        wf = cybershake(n_variations=8, seed=3).scaled(3.0)
        cluster = presets.hybrid_cluster(nodes=2)
        calm = run_workflow(
            wf, cluster, seed=5,
            fault_model=FaultModel(task_fault_rate=0.01),
            recovery=RecoveryPolicy.retry(50),
        )
        storm = run_workflow(
            wf, cluster, seed=5,
            fault_model=FaultModel(task_fault_rate=0.5),
            recovery=RecoveryPolicy.retry(50),
        )
        assert storm.makespan > calm.makespan
        assert storm.execution.task_faults > calm.execution.task_faults
