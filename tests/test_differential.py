"""Differential harness: vectorized scheduler kernels vs pure references.

Every scheduler in the zoo is run twice on the same (workflow, cluster)
cell — once through the vectorized numpy kernels (the production path) and
once under :func:`repro.schedulers._reference.reference_mode`, which routes
every rank/OCT/EFT computation through the retained pure-Python reference
implementations.  The two schedules must agree *exactly*: same device per
task and bit-identical start/finish floats.  Any drift between a kernel
and its reference — a changed reduction order, a fused multiply, a wrong
epsilon — surfaces here as a named divergence instead of as unexplained
golden-makespan churn.

The grid is randomized over workflow generators, generator seeds and
cluster presets (>= 50 cells).  A mutation-style test perturbs one rank
value in the vectorized path under monkeypatch and asserts the harness
reports the divergence, pinning down that the comparison actually bites.
"""

import networkx as nx
import pytest

import repro.core  # noqa: F401  (registers HDWS in the scheduler registry)
from repro.platform import presets
from repro.schedulers import REGISTRY, _reference
from repro.schedulers.base import SchedulingContext
from repro.workflows.generators import (
    cybershake,
    epigenomics,
    ligo_inspiral,
    montage,
    random_dag,
)

pytestmark = pytest.mark.differential


# --------------------------------------------------------------------- #
# harness                                                               #
# --------------------------------------------------------------------- #


def _assignments(schedule):
    """task -> (device, start, finish); exact floats, no rounding."""
    return {
        name: (a.device, a.start, a.finish)
        for name, a in schedule.assignments.items()
    }


def divergences(fast, ref):
    """All (task, fast_entry, ref_entry) triples that differ exactly."""
    out = []
    for name in sorted(set(fast) | set(ref)):
        if fast.get(name) != ref.get(name):
            out.append((name, fast.get(name), ref.get(name)))
    return out


def run_cell(scheduler_name, wf_factory, cluster_factory):
    """Schedule one cell in both modes; return the divergence list.

    Context and platform are rebuilt per mode so no cached vectors leak
    from the fast run into the reference run.
    """
    fast_schedule = REGISTRY[scheduler_name]().schedule(
        SchedulingContext(wf_factory(), cluster_factory())
    )
    with _reference.reference_mode():
        ref_schedule = REGISTRY[scheduler_name]().schedule(
            SchedulingContext(wf_factory(), cluster_factory())
        )
    return divergences(_assignments(fast_schedule), _assignments(ref_schedule))


# --------------------------------------------------------------------- #
# the randomized grid                                                   #
# --------------------------------------------------------------------- #

#: Schedulers that exercise the vectorized rank/OCT/EFT kernels directly.
KERNEL_SCHEDULERS = [
    "heft", "peft", "cpop", "minmin", "maxmin", "mct", "met", "olb", "hdws",
]

#: (label, workflow factory, cluster factory) — the randomized axes.
CELLS = [
    (
        f"random-ccr{ccr}-s{seed}",
        lambda ccr=ccr, seed=seed: random_dag(n_tasks=24, ccr=ccr, seed=seed),
        cluster,
    )
    for (ccr, seed), cluster in zip(
        [(0.2, 1), (1.0, 2), (5.0, 3)],
        [
            lambda: presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1),
            lambda: presets.unrelated_cluster(nodes=3),
            lambda: presets.edge_cluster(devices=4),
        ],
    )
] + [
    (
        "montage-25",
        lambda: montage(size=25, seed=7),
        lambda: presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1),
    ),
    (
        "epigenomics-24",
        lambda: epigenomics(size=24, seed=11),
        lambda: presets.unrelated_cluster(nodes=2),
    ),
    (
        "cybershake-25",
        lambda: cybershake(size=25, seed=13),
        lambda: presets.hybrid_cluster(nodes=3, cores_per_node=2, gpus_per_node=1),
    ),
    (
        "ligo-24",
        lambda: ligo_inspiral(size=24, seed=17),
        lambda: presets.edge_cluster(devices=6),
    ),
]


@pytest.mark.parametrize("scheduler_name", KERNEL_SCHEDULERS)
@pytest.mark.parametrize("label,wf_factory,cluster_factory", CELLS,
                         ids=[c[0] for c in CELLS])
def test_vectorized_matches_reference(
    scheduler_name, label, wf_factory, cluster_factory
):
    divs = run_cell(scheduler_name, wf_factory, cluster_factory)
    assert not divs, (
        f"{scheduler_name} on {label}: {len(divs)} divergence(s), "
        f"first: {divs[0]}"
    )


#: Schedulers that only consume the kernels indirectly (deterministic
#: defaults) — one smoke cell each keeps the whole registry honest.
INDIRECT_SCHEDULERS = [
    "levelwise", "lookahead-heft", "energy-heft", "roundrobin", "random",
]


@pytest.mark.parametrize("scheduler_name", INDIRECT_SCHEDULERS)
def test_registry_schedulers_match_reference(scheduler_name):
    divs = run_cell(
        scheduler_name,
        lambda: random_dag(n_tasks=18, ccr=1.0, seed=23),
        lambda: presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1),
    )
    assert not divs, f"{scheduler_name}: first divergence {divs[0]}"


def test_grid_has_at_least_50_cells():
    """The acceptance floor: the randomized grid covers >= 50 cells."""
    n = len(KERNEL_SCHEDULERS) * len(CELLS) + len(INDIRECT_SCHEDULERS)
    assert n >= 50


# --------------------------------------------------------------------- #
# mutation: the harness must detect an injected kernel bug              #
# --------------------------------------------------------------------- #


def test_mutated_rank_kernel_is_detected(monkeypatch):
    """Perturbing one vectorized rank value must surface as a divergence.

    The perturbation swaps the rank values of two *incomparable* tasks
    (no path between them), so the scheduling order stays topologically
    valid — the run cannot crash, it can only produce a different (and
    therefore detectably divergent) schedule.
    """
    from repro.schedulers import base

    original = base._vec_upward_ranks

    def perturbed(context, use_best=False):
        ranks = original(context, use_best)
        if _reference.reference_active():  # defensive; reference never routes here
            return ranks
        g = context.workflow.graph()
        order = sorted(ranks, key=lambda n: (-ranks[n], n))
        for i in range(len(order) - 1):
            u, v = order[i], order[i + 1]
            if (
                ranks[u] != ranks[v]
                and v not in nx.descendants(g, u)
                and u not in nx.descendants(g, v)
            ):
                ranks[u], ranks[v] = ranks[v], ranks[u]
                return ranks
        raise AssertionError("no incomparable adjacent pair to perturb")

    monkeypatch.setattr(base, "_vec_upward_ranks", perturbed)
    # seed=5 is verified to have a rank-adjacent incomparable pair whose
    # order actually matters for the final placement (some swaps are
    # harmless: the two tasks end up with identical placements either way).
    divs = run_cell(
        "heft",
        lambda: random_dag(n_tasks=24, ccr=1.0, seed=5),
        lambda: presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1),
    )
    assert divs, "harness failed to report an injected rank perturbation"


def test_reference_mode_is_reentrant_and_restores():
    assert not _reference.reference_active()
    with _reference.reference_mode():
        assert _reference.reference_active()
        with _reference.reference_mode():
            assert _reference.reference_active()
        assert _reference.reference_active()
    assert not _reference.reference_active()
