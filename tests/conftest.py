"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

# Every executor run in the suite is audited by the simulation sanitizer
# unless a test overrides this explicitly (sanitize=False / monkeypatch).
# Set before repro imports so pool workers inherit it too.
os.environ.setdefault("REPRO_SANITIZE", "1")

import repro.core  # noqa: F401  (registers hdws in the scheduler registry)
from repro.platform import presets
from repro.schedulers.base import SchedulingContext
from repro.workflows.generators import montage


@pytest.fixture
def hybrid_cluster():
    """A 2-node CPU+GPU cluster, small enough for fast tests."""
    return presets.hybrid_cluster(nodes=2, cores_per_node=2, gpus_per_node=1)


@pytest.fixture
def cpu_cluster():
    """A 2-node CPU-only cluster."""
    return presets.cpu_cluster(nodes=2, cores_per_node=2)


@pytest.fixture
def workstation():
    """The single-node 4 CPU + 1 GPU workstation."""
    return presets.single_node_workstation()


@pytest.fixture
def small_montage():
    """A small Montage workflow (deterministic)."""
    return montage(n_images=5, seed=7)


@pytest.fixture
def montage_context(small_montage, hybrid_cluster):
    """A SchedulingContext over the small montage + hybrid cluster."""
    return SchedulingContext(small_montage, hybrid_cluster)
