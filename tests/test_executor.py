"""Tests for the event-driven workflow executor."""

import pytest

from repro.core.executor import DONE, WorkflowExecutor
from repro.core.policies import DynamicMctPolicy, StaticPolicy
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform import presets
from repro.schedulers.base import SchedulingContext
from repro.schedulers.heft import HeftScheduler
from repro.workflows.generators import cybershake, montage
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, cpu_task


def run_static(wf, cluster, **kwargs):
    cluster.reset()
    plan = HeftScheduler().schedule(SchedulingContext(wf, cluster))
    executor = WorkflowExecutor(wf, cluster, StaticPolicy(plan), **kwargs)
    return executor.run(), plan


class TestBasicExecution:
    def test_all_tasks_complete(self, small_montage, hybrid_cluster):
        result, _plan = run_static(small_montage, hybrid_cluster)
        assert result.success
        assert result.completed_tasks == small_montage.n_tasks
        assert result.makespan > 0

    def test_noise_free_matches_plan_reasonably(self, small_montage, hybrid_cluster):
        result, plan = run_static(small_montage, hybrid_cluster)
        # The executor pays real contention the plan estimated; allow slack
        # but the two must be the same order of magnitude.
        assert result.makespan <= plan.makespan * 3.0
        assert result.makespan >= plan.makespan * 0.3

    def test_precedence_respected_in_execution(self, small_montage, hybrid_cluster):
        result, _plan = run_static(small_montage, hybrid_cluster)
        for name, rec in result.records.items():
            for pred in small_montage.predecessors(name):
                assert result.records[pred].finish <= rec.start + 1e-9

    def test_trace_has_start_finish_pairs(self, small_montage, hybrid_cluster):
        result, _plan = run_static(small_montage, hybrid_cluster)
        kinds = result.trace.kinds()
        assert kinds["task.start"] == small_montage.n_tasks
        assert kinds["task.finish"] == small_montage.n_tasks

    def test_network_and_staging_accounted(self, small_montage, hybrid_cluster):
        result, _plan = run_static(small_montage, hybrid_cluster)
        assert result.staging_mb > 0  # raw images staged from storage
        assert result.network_mb >= 0

    def test_device_busy_intervals_recorded(self, small_montage, hybrid_cluster):
        result, _plan = run_static(small_montage, hybrid_cluster)
        busy = sum(d.busy_time() for d in hybrid_cluster.devices)
        assert busy > 0

    def test_determinism(self, small_montage, hybrid_cluster):
        r1, _ = run_static(small_montage, hybrid_cluster, seed=5)
        r2, _ = run_static(small_montage, hybrid_cluster, seed=5)
        assert r1.makespan == r2.makespan

    def test_seed_changes_noisy_runs(self, small_montage, hybrid_cluster):
        hybrid_cluster.execution_model.noise_cv = 0.3
        try:
            r1, _ = run_static(small_montage, hybrid_cluster, seed=1)
            r2, _ = run_static(small_montage, hybrid_cluster, seed=2)
            assert r1.makespan != r2.makespan
        finally:
            hybrid_cluster.execution_model.noise_cv = 0.0


class TestCaching:
    def test_shared_input_staged_once_per_node(self):
        """Two consumers of one storage file on one node: one staging."""
        wf = Workflow("shared")
        wf.add_file(DataFile("big", 500.0, initial=True))
        for i in range(2):
            out = wf.add_file(DataFile(f"o{i}", 1.0))
            wf.add_task(cpu_task(f"t{i}", 10.0, inputs=("big",),
                                 outputs=(out.name,)))
        cluster = presets.single_node_workstation()
        result, _plan = run_static(wf, cluster)
        assert result.success
        # staged once: 500 MB, not 1000
        assert result.staging_mb == pytest.approx(500.0)


class TestTransientFaults:
    def test_retry_recovers(self):
        wf = cybershake(n_variations=6, seed=1)
        cluster = presets.hybrid_cluster(nodes=2)
        result, _plan = run_static(
            wf, cluster, seed=3,
            fault_model=FaultModel(task_fault_rate=0.5),
            recovery=RecoveryPolicy.retry(30),
        )
        assert result.success
        assert result.task_faults > 0
        assert result.retries == result.task_faults

    def test_no_protection_fails_run(self):
        wf = cybershake(n_variations=6, seed=1)
        cluster = presets.hybrid_cluster(nodes=2)
        result, _plan = run_static(
            wf, cluster, seed=3,
            fault_model=FaultModel(task_fault_rate=2.0),
            recovery=RecoveryPolicy.none(),
        )
        assert not result.success
        assert result.retries == 0

    def test_faults_lengthen_makespan(self):
        wf = cybershake(n_variations=6, seed=1).scaled(3.0)
        cluster = presets.hybrid_cluster(nodes=2)
        clean, _ = run_static(wf, cluster, seed=3)
        faulty, _ = run_static(
            wf, cluster, seed=3,
            fault_model=FaultModel(task_fault_rate=0.3),
            recovery=RecoveryPolicy.retry(50),
        )
        assert faulty.makespan > clean.makespan

    def test_checkpoint_bounds_lost_work(self):
        wf = cybershake(n_variations=6, seed=1).scaled(5.0)
        cluster = presets.hybrid_cluster(nodes=2)
        retry, _ = run_static(
            wf, cluster, seed=3,
            fault_model=FaultModel(task_fault_rate=0.3),
            recovery=RecoveryPolicy.retry(60),
        )
        ckpt, _ = run_static(
            wf, cluster, seed=3,
            fault_model=FaultModel(task_fault_rate=0.3),
            recovery=RecoveryPolicy.checkpoint(0.5, overhead=0.02, retries=60),
        )
        assert ckpt.success and retry.success
        assert ckpt.makespan < retry.makespan * 1.05

    def test_progress_fraction_accumulates(self):
        wf = cybershake(n_variations=4, seed=1).scaled(5.0)
        cluster = presets.hybrid_cluster(nodes=2)
        result, _ = run_static(
            wf, cluster, seed=3,
            fault_model=FaultModel(task_fault_rate=0.4),
            recovery=RecoveryPolicy.checkpoint(0.5, retries=60),
        )
        assert result.success
        assert all(
            rec.progress_fraction == 1.0 for rec in result.records.values()
        )


class TestDeviceFaults:
    def test_run_survives_device_loss(self):
        wf = montage(n_images=8, seed=2)
        cluster = presets.hybrid_cluster(nodes=2)
        result, _plan = run_static(
            wf, cluster, seed=7,
            fault_model=FaultModel(device_mtbf=5.0),
            recovery=RecoveryPolicy.retry(20),
        )
        assert result.device_faults > 0
        assert result.success

    def test_failed_devices_not_reused(self):
        wf = montage(n_images=8, seed=2)
        cluster = presets.hybrid_cluster(nodes=2)
        result, _plan = run_static(
            wf, cluster, seed=7,
            fault_model=FaultModel(device_mtbf=5.0),
            recovery=RecoveryPolicy.retry(20),
        )
        failures = result.trace.of_kind("fault.device")
        for frec in failures:
            dead_uid = frec.get("device")
            dead_time = frec.time
            for srec in result.trace.of_kind("task.start"):
                if srec.get("device") == dead_uid:
                    assert srec.time <= dead_time + 1e-9

    def test_last_device_never_killed(self):
        # All-CPU platform: any surviving device can run any task, so the
        # run must complete even when every other device dies.
        wf = montage(n_images=4, seed=2)
        cluster = presets.cpu_cluster(nodes=2, cores_per_node=2)
        result, _plan = run_static(
            wf, cluster, seed=7,
            fault_model=FaultModel(device_mtbf=0.5),
            recovery=RecoveryPolicy.retry(50),
        )
        assert len(cluster.alive_devices()) >= 1
        assert result.success


class TestDynamicPolicy:
    def test_dynamic_completes(self, small_montage, hybrid_cluster):
        hybrid_cluster.reset()
        executor = WorkflowExecutor(
            small_montage, hybrid_cluster, DynamicMctPolicy()
        )
        result = executor.run()
        assert result.success

    def test_dynamic_locality_completes(self, small_montage, hybrid_cluster):
        hybrid_cluster.reset()
        executor = WorkflowExecutor(
            small_montage, hybrid_cluster,
            DynamicMctPolicy(locality_aware=True),
        )
        result = executor.run()
        assert result.success


class TestArchive:
    def test_archive_records_outputs_at_storage(self, small_montage, hybrid_cluster):
        hybrid_cluster.reset()
        plan = HeftScheduler().schedule(
            SchedulingContext(small_montage, hybrid_cluster)
        )
        executor = WorkflowExecutor(
            small_montage, hybrid_cluster, StaticPolicy(plan),
            recovery=RecoveryPolicy(max_retries=0, archive_outputs=True),
        )
        result = executor.run()
        assert result.success
        from repro.data.catalog import ReplicaCatalog

        for task in small_montage.tasks.values():
            for fname in task.outputs:
                assert executor.catalog.has(fname, ReplicaCatalog.STORAGE)

    def test_max_time_stops_early(self, small_montage, hybrid_cluster):
        hybrid_cluster.reset()
        plan = HeftScheduler().schedule(
            SchedulingContext(small_montage, hybrid_cluster)
        )
        executor = WorkflowExecutor(
            small_montage, hybrid_cluster, StaticPolicy(plan)
        )
        result = executor.run(max_time=0.01)
        assert not result.success
