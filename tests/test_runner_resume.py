"""Checkpoint/resume: a failed campaign continues where it stopped."""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import make_job, preset_spec
from repro.runner import CampaignRunner, ResultCache
from repro.workflows.generators import montage

CLUSTER = preset_spec("hybrid", nodes=2, cores_per_node=2, gpus_per_node=1)


def _jobs(n=6, seed=5):
    wf = montage(size=12, seed=seed)
    return [
        make_job(wf, CLUSTER, scheduler="heft", seed=seed + i, noise_cv=0.1,
                 label=f"resume:{i}")
        for i in range(n)
    ]


def _failing_job(seed=5):
    """A cell that raises inside the worker (unknown RunConfig field)."""
    return make_job(
        montage(size=12, seed=seed), CLUSTER, scheduler="heft",
        seed=seed, bogus_config_field=1, label="resume:injected-failure",
    )


def test_resume_after_injected_failure_only_resimulates_incomplete(tmp_path):
    """Cells completed before a mid-campaign failure never re-simulate.

    A batch with a failing cell injected at index 3 crashes the run;
    cells 0-2 completed first (serial dispatch is submission-ordered)
    and the error-path sync checkpointed them.  The rerun with the
    repaired batch re-simulates exactly the cells the crashed run never
    finished, and the assembled records are identical to a clean
    never-crashed campaign.
    """
    jobs = _jobs()
    broken = list(jobs)
    broken[3] = _failing_job()

    crashed = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    with pytest.raises(RuntimeError, match="injected-failure"):
        crashed.run_sims(broken)
    assert crashed.simulated == 3  # cells 0..2 finished before the crash

    resumed = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    records = resumed.run_sims(jobs)
    assert resumed.simulated == 3  # only cells 3..5 re-simulate
    assert resumed.cache.stats.hits == 3

    clean = CampaignRunner(jobs=1).run_sims(jobs)
    assert records == clean  # bit-identical to a never-crashed campaign


def test_resume_is_identical_under_parallel_rerun(tmp_path):
    """The resumed pass may be parallel: records still match exactly."""
    jobs = _jobs()
    broken = list(jobs)
    broken[3] = _failing_job()

    crashed = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    with pytest.raises(RuntimeError):
        crashed.run_sims(broken)

    resumed = CampaignRunner(jobs=2, cache=ResultCache(str(tmp_path)))
    try:
        records = resumed.run_sims(jobs)
    finally:
        resumed.close()
    assert records == CampaignRunner(jobs=1).run_sims(jobs)


def test_unclosed_runner_still_checkpoints_completed_batches(tmp_path):
    """Batch-end syncs make a kill between batches lose nothing."""
    jobs = _jobs()
    first = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    first.run_sims(jobs[:3])
    # No close(), no sync() call: simulate an abrupt exit after a batch.
    resumed = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    resumed.run_sims(jobs)
    assert resumed.simulated == 3  # the first three cells warm-start


def test_cli_resume_requires_cache_dir():
    from repro.cli import _campaign_runner, build_parser

    args = build_parser().parse_args(["exp", "x2", "--resume"])
    with pytest.raises(SystemExit, match="cache-dir"):
        _campaign_runner(args)


def test_cli_resume_reclaims_stale_tmp_files(tmp_path):
    from repro.cli import _campaign_runner, build_parser

    stray = tmp_path / ".tmp-crashed-writer.json"
    stray.write_text("{", encoding="utf-8")
    args = build_parser().parse_args(
        ["exp", "x2", "--resume", "--cache-dir", str(tmp_path)]
    )
    runner = _campaign_runner(args)
    try:
        assert not os.path.exists(stray)
        assert runner.cache is not None
    finally:
        runner.close()
