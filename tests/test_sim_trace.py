"""Tests for the trace recorder."""

from repro.sim.trace import TraceRecord, TraceRecorder


class TestTraceRecorder:
    def test_records_in_order(self):
        tr = TraceRecorder()
        tr.record(1.0, "a", x=1)
        tr.record(2.0, "b", x=2)
        assert [r.kind for r in tr] == ["a", "b"]
        assert len(tr) == 2

    def test_disabled_recorder_stores_nothing(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "a")
        assert len(tr) == 0

    def test_of_kind_filters_exactly(self):
        tr = TraceRecorder()
        tr.record(1.0, "task.start")
        tr.record(2.0, "task.start.extra")
        assert len(tr.of_kind("task.start")) == 1

    def test_matching_predicate(self):
        tr = TraceRecorder()
        tr.record(1.0, "x", v=1)
        tr.record(2.0, "x", v=5)
        heavy = tr.matching(lambda r: r.get("v", 0) > 2)
        assert len(heavy) == 1
        assert heavy[0].get("v") == 5

    def test_kinds_histogram(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.record(2.0, "a")
        tr.record(3.0, "b")
        assert tr.kinds() == {"a": 2, "b": 1}

    def test_first_and_last(self):
        tr = TraceRecorder()
        tr.record(1.0, "a", i=1)
        tr.record(2.0, "a", i=2)
        assert tr.first("a").get("i") == 1
        assert tr.last("a").get("i") == 2
        assert tr.first("zzz") is None
        assert tr.last("zzz") is None

    def test_span(self):
        tr = TraceRecorder()
        assert tr.span() == 0.0
        tr.record(1.0, "a")
        tr.record(4.5, "b")
        assert tr.span() == 3.5

    def test_clear(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.clear()
        assert len(tr) == 0

    def test_record_payload_accessor_default(self):
        rec = TraceRecord(1.0, "k", {"a": 1})
        assert rec.get("a") == 1
        assert rec.get("missing", 9) == 9

    def test_records_returns_copy(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        copy = tr.records
        copy.clear()
        assert len(tr) == 1


class TestKindsAllowlist:
    def test_only_allowed_kinds_stored(self):
        tr = TraceRecorder(kinds=["task.finish"])
        tr.record(1.0, "task.finish", task="t")
        tr.record(2.0, "transfer.start", file="f")
        assert [r.kind for r in tr] == ["task.finish"]
        assert tr.kinds_filter == frozenset({"task.finish"})

    def test_unfiltered_recorder_reports_no_filter(self):
        assert TraceRecorder().kinds_filter is None

    def test_subscribers_see_filtered_kinds(self):
        seen = []
        tr = TraceRecorder(kinds=["task.finish"])
        tr.subscribe(lambda rec: seen.append(rec.kind))
        tr.record(1.0, "task.finish")
        tr.record(2.0, "transfer.start")
        assert seen == ["task.finish", "transfer.start"]
        assert len(tr) == 1


class TestDisabledHotPath:
    def test_disabled_and_unsubscribed_is_inert(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "a", heavy="payload")
        assert len(tr) == 0

    def test_subscriber_revives_disabled_recorder(self):
        seen = []
        tr = TraceRecorder(enabled=False)
        tr.subscribe(seen.append)
        tr.record(1.0, "a")
        assert len(seen) == 1 and len(tr) == 0
        tr.unsubscribe(seen.append)
        tr.record(2.0, "b")
        assert len(seen) == 1

    def test_enabled_setter_toggles_storage(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "a")
        tr.enabled = True
        tr.record(2.0, "b")
        assert [r.kind for r in tr] == ["b"]
        tr.enabled = False
        tr.record(3.0, "c")
        assert [r.kind for r in tr] == ["b"]
