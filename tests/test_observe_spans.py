"""Span tracing: nesting discipline, trace-derived spans, live parity."""

import numpy as np
import pytest

from repro.core.api import run_workflow
from repro.observe import Span, SpanTracer, TraceSpanBuilder, spans_from_trace
from repro.platform import presets
from repro.sim.trace import TraceRecorder
from repro.workflows.generators import cybershake, montage


class TestSpanTracer:
    def test_parent_child_nesting(self):
        t = [0.0]
        tracer = SpanTracer(time_fn=lambda: t[0], wall=False)
        outer = tracer.begin("outer")
        t[0] = 1.0
        inner = tracer.begin("inner")
        t[0] = 2.0
        tracer.end(inner)
        t[0] = 3.0
        tracer.end(outer)
        assert inner.parent == outer.sid
        assert outer.parent is None
        assert (outer.start, outer.end) == (0.0, 3.0)
        assert (inner.start, inner.end) == (1.0, 2.0)
        assert tracer.depth == 0

    def test_context_manager_closes_on_exception(self):
        tracer = SpanTracer(wall=False)
        with pytest.raises(RuntimeError):
            with tracer.span("a"):
                with tracer.span("b"):
                    raise RuntimeError("boom")
        assert tracer.depth == 0
        assert all(not s.open for s in tracer.spans)

    def test_out_of_order_close_raises(self):
        tracer = SpanTracer(wall=False)
        a = tracer.begin("a")
        tracer.begin("b")
        with pytest.raises(RuntimeError, match="nesting violated"):
            tracer.end(a)

    def test_end_without_open_raises(self):
        with pytest.raises(RuntimeError, match="no open span"):
            SpanTracer(wall=False).end()

    def test_wall_stamps(self):
        tracer = SpanTracer(wall=True)
        with tracer.span("a"):
            pass
        span = tracer.spans[0]
        assert span.wall_start is not None
        assert span.wall_end >= span.wall_start
        bare = SpanTracer(wall=False)
        with bare.span("a"):
            pass
        assert bare.spans[0].wall_start is None

    def test_random_nesting_invariants(self):
        # Property test: any push/pop sequence yields well-formed spans —
        # children open after and close before their parent, sids order
        # by open time, depth returns to zero.
        rng = np.random.default_rng(42)
        clock = [0.0]
        tracer = SpanTracer(time_fn=lambda: clock[0], wall=False)
        for _ in range(400):
            clock[0] += float(rng.uniform(0.0, 1.0))
            if tracer.depth and rng.random() < 0.5:
                tracer.end()
            else:
                tracer.begin(f"s{clock[0]:.3f}")
        while tracer.depth:
            clock[0] += 1.0
            tracer.end()

        by_sid = {s.sid: s for s in tracer.spans}
        assert sorted(by_sid) == list(range(len(tracer.spans)))
        for span in tracer.spans:
            assert not span.open
            assert span.end >= span.start
            if span.parent is not None:
                parent = by_sid[span.parent]
                assert parent.sid < span.sid
                assert parent.start <= span.start
                assert parent.end >= span.end


def _feed_all(records):
    builder = TraceSpanBuilder()
    for time, kind, data in records:
        from repro.sim.trace import TraceRecord

        builder.feed(TraceRecord(time, kind, data))
    return builder


class TestTraceSpanBuilder:
    def test_stage_start_finish_lifecycle(self):
        builder = _feed_all([
            (0.0, "task.stage", {"task": "t1", "device": "d0", "until": 1.0}),
            (1.0, "task.start", {"task": "t1", "device": "d0",
                                 "attempt": 1, "duration": 2.0}),
            (3.0, "task.finish", {"task": "t1", "device": "d0",
                                  "duration": 2.0, "energy_j": 4.0}),
        ])
        spans = builder.finish()
        parent = next(s for s in spans if s.name == "task t1")
        stage = next(s for s in spans if s.name == "stage_in")
        execspan = next(s for s in spans if s.name == "exec")
        assert (parent.start, parent.end) == (0.0, 3.0)
        assert (stage.start, stage.end) == (0.0, 1.0)
        assert (execspan.start, execspan.end) == (1.0, 3.0)
        assert stage.parent == parent.sid == execspan.parent
        assert parent.attrs["outcome"] == "done"
        assert parent.attrs["energy_j"] == 4.0
        assert parent.track == stage.track == execspan.track == "d0"

    @pytest.mark.parametrize("kind,outcome", [
        ("fault.task", "fault"), ("task.preempt", "preempted"),
    ])
    def test_non_finish_outcomes(self, kind, outcome):
        builder = _feed_all([
            (0.0, "task.stage", {"task": "t", "device": "d"}),
            (0.5, "task.start", {"task": "t", "device": "d"}),
            (1.0, kind, {"task": "t", "device": "d"}),
        ])
        parent = next(s for s in builder.finish() if s.name == "task t")
        assert parent.attrs["outcome"] == outcome

    def test_restage_abandons_open_clone(self):
        builder = _feed_all([
            (0.0, "task.stage", {"task": "t", "device": "d"}),
            (2.0, "task.stage", {"task": "t", "device": "d"}),
            (2.5, "task.start", {"task": "t", "device": "d"}),
            (3.0, "task.finish", {"task": "t", "device": "d"}),
        ])
        spans = builder.finish()
        parents = [s for s in spans if s.name == "task t"]
        assert len(parents) == 2
        assert parents[0].attrs["outcome"] == "abandoned"
        assert parents[0].end == 2.0
        assert parents[1].attrs["outcome"] == "done"

    def test_transfer_and_point_spans(self):
        builder = _feed_all([
            (0.0, "transfer.start", {"file": "f.dat", "src": "n0",
                                     "dst": "n1", "arrives": 1.5,
                                     "size_mb": 8.0}),
            (2.0, "store.evict", {"node": "n1", "file": "f.dat"}),
        ])
        spans = builder.finish()
        xfer = next(s for s in spans if s.name == "xfer f.dat")
        assert xfer.track == "net n0->n1"
        assert (xfer.start, xfer.end) == (0.0, 1.5)
        assert xfer.attrs["size_mb"] == 8.0
        evict = next(s for s in spans if s.name == "store.evict")
        assert evict.duration == 0.0
        assert evict.track == "n1"

    def test_dangling_clone_closed_as_unclosed(self):
        builder = _feed_all([
            (0.0, "task.stage", {"task": "t", "device": "d"}),
            (4.0, "archive", {"file": "f"}),
        ])
        spans = builder.finish()
        parent = next(s for s in spans if s.name == "task t")
        assert parent.end == 4.0
        assert parent.attrs["outcome"] == "unclosed"

    def test_start_without_stage_ignored(self):
        builder = _feed_all([
            (0.0, "task.start", {"task": "t", "device": "d"}),
        ])
        assert builder.finish() == []


class TestRealRunSpans:
    def _trace(self, gen=montage, **kw):
        return run_workflow(
            gen(size=25, seed=5), presets.hybrid_cluster(),
            scheduler="heft", seed=5, noise_cv=0.1, **kw,
        ).execution.trace

    def test_spans_well_formed(self):
        trace = self._trace()
        spans = spans_from_trace(trace)
        assert spans
        by_sid = {s.sid: s for s in spans}
        for span in spans:
            assert not span.open
            assert span.end >= span.start
            if span.parent is not None:
                parent = by_sid[span.parent]
                assert parent.start <= span.start
                assert parent.end >= span.end
        # Every completed task produced a top-level span marked done.
        done = [
            s for s in spans
            if s.parent is None and s.attrs.get("outcome") == "done"
        ]
        assert len(done) == len(trace.of_kind("task.finish"))

    def test_live_subscriber_equals_posthoc(self):
        trace = self._trace(gen=cybershake)
        live = TraceSpanBuilder()
        recorder = TraceRecorder()
        live.attach(recorder)
        for rec in trace:
            recorder.record(rec.time, rec.kind, **rec.data)
        assert live.finish() == spans_from_trace(trace)


class TestSpanDataclass:
    def test_duration_and_open(self):
        s = Span(sid=0, name="a", track="t", start=1.0)
        assert s.open and s.duration == 0.0
        s.end = 3.5
        assert not s.open and s.duration == 2.5
