"""Tests for workflow merging and ensemble execution."""

import pytest

from repro.core.ensemble import EnsembleMember, EnsembleRunner
from repro.core.orchestrator import RunConfig
from repro.platform import presets
from repro.workflows.ensemble import (
    member_ids,
    member_prefix,
    member_tasks,
    merge_workflows,
    split_member,
)
from repro.workflows.generators import blast, montage
from repro.workflows.validate import validate_workflow


@pytest.fixture
def members():
    return [
        EnsembleMember("a", montage(n_images=5, seed=1), priority=1.0),
        EnsembleMember("b", blast(n_chunks=8, seed=2), priority=3.0),
    ]


class TestMerge:
    def test_namespacing(self):
        assert member_prefix("a", "t1") == "a::t1"
        assert split_member("a::t1") == ("a", "t1")
        with pytest.raises(ValueError):
            split_member("nonamespace")

    def test_merged_is_valid_and_complete(self, members):
        merged = merge_workflows({m.member_id: m.workflow for m in members})
        validate_workflow(merged)
        assert merged.n_tasks == sum(m.workflow.n_tasks for m in members)
        assert len(merged.files) == sum(len(m.workflow.files) for m in members)

    def test_members_structurally_independent(self, members):
        merged = merge_workflows({m.member_id: m.workflow for m in members})
        for t in member_tasks(merged, "a"):
            for succ in merged.successors(t):
                assert succ.startswith("a::")

    def test_member_queries(self, members):
        merged = merge_workflows({m.member_id: m.workflow for m in members})
        assert member_ids(merged) == ["a", "b"]
        assert len(member_tasks(merged, "a")) == members[0].workflow.n_tasks

    def test_priorities_copied(self, members):
        merged = merge_workflows(
            {m.member_id: m.workflow for m in members},
            priorities={"a": 1.0, "b": 3.0},
        )
        assert all(
            merged.tasks[t].priority_hint == 3.0
            for t in member_tasks(merged, "b")
        )

    def test_bad_inputs_rejected(self, members):
        with pytest.raises(ValueError):
            merge_workflows({})
        with pytest.raises(ValueError):
            merge_workflows({"x::y": members[0].workflow})

    def test_edge_structure_preserved(self, members):
        wf = members[0].workflow
        merged = merge_workflows({"a": wf})
        assert merged.n_edges == wf.n_edges


class TestEnsembleRunner:
    @pytest.fixture
    def runner(self):
        return EnsembleRunner(
            presets.hybrid_cluster(nodes=2, cores_per_node=2),
            RunConfig(seed=1),
        )

    def test_invalid_discipline_rejected(self, runner, members):
        with pytest.raises(ValueError):
            runner.run(members, discipline="anarchic")

    def test_empty_ensemble_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run([])

    def test_duplicate_member_ids_rejected(self, runner, members):
        dup = [members[0], members[0]]
        with pytest.raises(ValueError):
            runner.run(dup)

    def test_sequential_finishes_cumulative(self, runner, members):
        res = runner.run(members, discipline="sequential")
        assert res.success
        finishes = [res.member_finish[m.member_id] for m in members]
        assert finishes == sorted(finishes)
        assert res.makespan == pytest.approx(max(finishes))

    def test_priority_orders_by_priority(self, runner, members):
        res = runner.run(members, discipline="priority")
        # member "b" (priority 3) runs before "a" (priority 1)
        assert res.member_finish["b"] < res.member_finish["a"]

    def test_shared_beats_sequential_makespan(self, runner, members):
        seq = runner.run(members, discipline="sequential")
        shared = runner.run(members, discipline="shared")
        assert shared.success
        assert shared.makespan < seq.makespan

    def test_slowdowns_at_least_near_one(self, runner, members):
        res = runner.run(members, discipline="shared")
        for mid, slow in res.member_slowdown.items():
            assert slow > 0.8, mid

    def test_throughput(self, runner, members):
        res = runner.run(members, discipline="shared")
        assert res.throughput() == pytest.approx(
            len(members) / res.makespan
        )

    def test_solo_can_be_skipped(self, runner, members):
        res = runner.run(members, discipline="shared", compute_solo=False)
        assert res.member_solo == {}
        assert res.member_slowdown == {}
