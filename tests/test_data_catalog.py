"""Tests for the replica catalog."""

from repro.data.catalog import ReplicaCatalog


class TestReplicaCatalog:
    def test_register_and_query(self):
        cat = ReplicaCatalog()
        cat.register("f", "n0")
        assert cat.has("f", "n0")
        assert cat.exists("f")
        assert "f" in cat
        assert cat.replica_count("f") == 1

    def test_missing_file(self):
        cat = ReplicaCatalog()
        assert not cat.exists("ghost")
        assert cat.locations("ghost") == []
        assert cat.replica_count("ghost") == 0

    def test_multiple_replicas(self):
        cat = ReplicaCatalog()
        cat.register("f", "n1")
        cat.register("f", "n0")
        assert cat.locations("f") == ["n0", "n1"]
        assert cat.replica_count("f") == 2

    def test_storage_sorts_first(self):
        cat = ReplicaCatalog()
        cat.register("f", "a-node")
        cat.register("f", ReplicaCatalog.STORAGE)
        assert cat.locations("f")[0] == ReplicaCatalog.STORAGE

    def test_register_idempotent(self):
        cat = ReplicaCatalog()
        cat.register("f", "n0")
        cat.register("f", "n0")
        assert cat.replica_count("f") == 1

    def test_unregister(self):
        cat = ReplicaCatalog()
        cat.register("f", "n0")
        cat.register("f", "n1")
        cat.unregister("f", "n0")
        assert cat.locations("f") == ["n1"]
        cat.unregister("f", "n1")
        assert not cat.exists("f")

    def test_unregister_absent_noop(self):
        cat = ReplicaCatalog()
        cat.unregister("ghost", "n0")  # no exception

    def test_files_at(self):
        cat = ReplicaCatalog()
        cat.register("b", "n0")
        cat.register("a", "n0")
        cat.register("c", "n1")
        assert cat.files_at("n0") == ["a", "b"]
        assert cat.files_at("n9") == []

    def test_len_counts_files(self):
        cat = ReplicaCatalog()
        cat.register("a", "n0")
        cat.register("a", "n1")
        cat.register("b", "n0")
        assert len(cat) == 2

    def test_clear(self):
        cat = ReplicaCatalog()
        cat.register("a", "n0")
        cat.clear()
        assert len(cat) == 0
