"""Pickle-boundary checker tests (mutation style).

Each check id gets a seeded violation that must fire and a blessed
plain-data idiom that must stay quiet; the tree-level test pins the
shipped runner to the contract: worker payloads are plain data and pool
targets are module-level functions.
"""

import os
import textwrap

from repro.staticcheck.callgraph import build_callgraph
from repro.staticcheck.pickle_safety import (
    check_pickle_safety,
    payload_builders,
)


def graph_for(tmp_path, files):
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(str(path))
    return build_callgraph(paths)


def checks(findings):
    return {f.check for f in findings}


class TestBuilderDiscovery:
    def test_convention_names_are_found(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class Job:
                def payload(self):
                    return {}
            def _payload_for(job):
                return {}
            def unrelated():
                return {}
        """})
        assert payload_builders(g) == ["m.Job.payload", "m._payload_for"]


class TestPayloadValues:
    def test_lambda_in_payload_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def payload(x):
                return {"fn": lambda: x}
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-lambda"}

    def test_local_def_in_payload_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def payload(x):
                def helper():
                    return x
                return {"fn": helper}
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-local-def"}

    def test_open_handle_in_payload_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def payload(path):
                fh = open(path)
                return {"handle": fh}
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-open-handle"}

    def test_inline_open_in_payload_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def payload(path):
                return {"handle": open(path)}
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-open-handle"}

    def test_module_state_in_payload_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _CACHE = {}
            def payload(x):
                return {"cache": _CACHE}
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-module-state"}

    def test_violation_in_callee_of_builder_fires(self, tmp_path):
        # The cone matters: the bad store sits one call away.
        g = graph_for(tmp_path, {"m.py": """
            def fill(out, x):
                out["fn"] = lambda: x
                return out
            def payload(x):
                return fill({}, x)
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-lambda"}

    def test_plain_data_payload_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def payload(job):
                return {
                    "kind": "sim",
                    "seed": job,
                    "sizes": [1, 2, 3],
                    "spec": {"name": "heft"},
                }
        """})
        assert check_pickle_safety(g) == []

    def test_immutable_module_constant_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            VERSION = "v1"
            LIMITS = (1, 2)
            def payload(x):
                return {"version": VERSION, "limits": LIMITS}
        """})
        assert check_pickle_safety(g) == []


class TestPoolTargets:
    def test_lambda_target_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def drive(pool, items):
                return pool.map(lambda x: x + 1, items)
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-unpicklable-target"}

    def test_nested_def_target_fires(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def drive(pool, items):
                def work(x):
                    return x + 1
                return pool.imap_unordered(work, items)
        """})
        assert checks(check_pickle_safety(g)) == {"pickle-unpicklable-target"}

    def test_module_level_target_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def work(x):
                return x + 1
            def drive(pool, items):
                return pool.imap_unordered(work, items)
        """})
        assert check_pickle_safety(g) == []


class TestAllowlist:
    def test_sited_entry_suppresses(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            _CACHE = {}
            def payload(x):
                return {"cache": _CACHE}
        """})
        used = set()
        allow = [("m.py", "pickle-module-state", "_CACHE")]
        assert check_pickle_safety(g, allow=allow, used=used) == []
        assert used


class TestShippedRunnerHonoursContract:
    def test_src_repro_payloads_are_plain_data(self):
        import repro

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        builders = payload_builders(g)
        # The real builders are in the graph, not just test doubles.
        assert "repro.runner.jobs.SimJob.payload" in builders
        findings = check_pickle_safety(g)
        assert findings == [], "\n".join(str(f) for f in findings)
