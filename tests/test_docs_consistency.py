"""Guard rails keeping the documentation in sync with the code.

These tests fail when someone adds a scheduler, generator, preset or
experiment without updating the user-facing inventories — the cheapest
way to keep README/DESIGN trustworthy.
"""

import os
import re

import pytest

import repro.core  # noqa: F401  (registry hook)
from repro.experiments import REGISTRY as EXPERIMENTS
from repro.platform import presets
from repro.schedulers import REGISTRY as SCHEDULERS
from repro.workflows.generators import ALL_GENERATORS

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name: str) -> str:
    with open(os.path.join(REPO, name), encoding="utf-8") as fh:
        return fh.read()


class TestDesignDoc:
    def test_mismatch_notice_present(self):
        text = read("DESIGN.md")
        assert "mismatch" in text.lower()
        assert "survey" in text.lower()

    def test_every_experiment_listed(self):
        text = read("DESIGN.md")
        for exp_id in EXPERIMENTS:
            assert re.search(exp_id.upper(), text), exp_id

    def test_bench_files_exist_for_every_experiment(self):
        bench_dir = os.path.join(REPO, "benchmarks")
        files = os.listdir(bench_dir)
        for exp_id in EXPERIMENTS:
            assert any(exp_id in f for f in files), exp_id


class TestReadme:
    def test_quickstart_modules_exist(self):
        text = read("README.md")
        assert "run_workflow" in text
        assert "presets" in text

    def test_examples_table_matches_directory(self):
        text = read("README.md")
        examples = [
            f for f in os.listdir(os.path.join(REPO, "examples"))
            if f.endswith(".py")
        ]
        for example in examples:
            assert example in text, f"README misses example {example}"

    def test_docs_directory_files_mentioned(self):
        text = read("README.md")
        for doc in os.listdir(os.path.join(REPO, "docs")):
            assert doc in text, f"README misses docs/{doc}"


class TestInventories:
    def test_cli_lists_match_registries(self, capsys):
        from repro.cli import main

        main(["list"])
        out = capsys.readouterr().out
        for name in SCHEDULERS:
            assert name in out
        for name in ALL_GENERATORS:
            assert name in out
        for name in presets.PRESETS:
            assert name in out
        for name in EXPERIMENTS:
            assert name in out

    def test_scheduling_doc_covers_registry(self):
        text = read(os.path.join("docs", "scheduling.md"))
        for name in SCHEDULERS:
            assert f"`{name}`" in text or name in text, name

    def test_experiments_md_generated(self):
        text = read("EXPERIMENTS.md")
        for exp_id in EXPERIMENTS:
            assert exp_id.upper() in text, exp_id
