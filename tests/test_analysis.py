"""Tests for stats, comparison tables, report formatting and Gantt."""

import pytest

from repro.analysis.compare import ComparisonTable
from repro.analysis.gantt import ascii_gantt
from repro.analysis.report import format_table
from repro.analysis.stats import (
    confidence_interval,
    geometric_mean,
    normalized_to,
    rank_order,
    summarize,
)
from repro.sim.trace import TraceRecorder


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.n == 3
        assert s.ci95 > 0

    def test_summarize_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci95 == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_shrinks_with_n(self):
        narrow = confidence_interval([1.0, 2.0] * 50)
        wide = confidence_interval([1.0, 2.0])
        assert narrow < wide

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_normalized_to(self):
        out = normalized_to({"a": 2.0, "b": 4.0}, "a")
        assert out == {"a": 1.0, "b": 2.0}
        with pytest.raises(KeyError):
            normalized_to({"a": 1.0}, "zzz")

    def test_rank_order(self):
        vals = {"x": 3.0, "y": 1.0, "z": 2.0}
        assert rank_order(vals) == ["y", "z", "x"]
        assert rank_order(vals, ascending=False) == ["x", "z", "y"]

    def test_summary_as_dict(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {"n", "mean", "std", "ci95", "min", "max"}


class TestComparisonTable:
    def make(self):
        t = ComparisonTable("wf")
        t.set("m", "heft", 10.0)
        t.set("m", "hdws", 8.0)
        t.set("c", "heft", 20.0)
        t.set("c", "hdws", 10.0)
        return t

    def test_set_get(self):
        t = self.make()
        assert t.get("m", "heft") == 10.0
        assert t.rows == ["m", "c"]
        assert t.columns == ["heft", "hdws"]

    def test_missing_cell_raises(self):
        with pytest.raises(KeyError):
            self.make().get("m", "zzz")

    def test_row_and_column_values(self):
        t = self.make()
        assert t.row_values("m") == {"heft": 10.0, "hdws": 8.0}
        assert t.column_values("hdws") == {"m": 8.0, "c": 10.0}

    def test_normalized(self):
        norm = self.make().normalized("heft")
        assert norm.get("m", "hdws") == pytest.approx(0.8)
        assert norm.get("c", "heft") == 1.0

    def test_normalized_missing_reference_raises(self):
        t = ComparisonTable()
        t.set("r", "a", 1.0)
        with pytest.raises(ValueError):
            t.normalized("b")

    def test_geomean_row(self):
        t = self.make().with_geomean_row()
        assert "geo-mean" in t.rows
        assert t.get("geo-mean", "heft") == pytest.approx(
            geometric_mean([10.0, 20.0])
        )

    def test_best_column_per_row(self):
        winners = self.make().best_column_per_row()
        assert winners == {"m": "hdws", "c": "hdws"}

    def test_render_contains_cells(self):
        text = self.make().render(precision=1)
        assert "heft" in text
        assert "10.0" in text

    def test_render_handles_missing_cells(self):
        t = ComparisonTable()
        t.set("r1", "a", 1.0)
        t.set("r2", "b", 2.0)
        assert "-" in t.render()


class TestFormatTable:
    def test_basic_render(self):
        text = format_table(["name", "value"], [["x", 1.5], ["y", 2.25]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_large_numbers_scientific(self):
        text = format_table(["v"], [[1.5e9]])
        assert "e+" in text

    def test_nan_rendered_as_dash(self):
        text = format_table(["v"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_title_prepended(self):
        text = format_table(["v"], [[1.0]], title="My Table")
        assert text.startswith("My Table")

    def test_bools_rendered(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestGantt:
    def test_empty_trace(self):
        assert "empty" in ascii_gantt(TraceRecorder())

    def test_devices_and_bars_rendered(self):
        tr = TraceRecorder()
        tr.record(0.0, "task.start", task="t1", device="d0")
        tr.record(5.0, "task.finish", task="t1", device="d0")
        tr.record(5.0, "task.start", task="t2", device="d1")
        tr.record(10.0, "task.finish", task="t2", device="d1")
        out = ascii_gantt(tr, width=40)
        assert "d0" in out and "d1" in out
        assert "#" in out

    def test_crashed_attempts_appear(self):
        tr = TraceRecorder()
        tr.record(0.0, "task.start", task="t", device="d0")
        tr.record(2.0, "fault.task", task="t", device="d0")
        tr.record(2.0, "task.start", task="t", device="d0")
        tr.record(6.0, "task.finish", task="t", device="d0")
        out = ascii_gantt(tr, width=40)
        assert "d0" in out

    def test_real_run_gantt(self, small_montage, hybrid_cluster):
        from repro import run_workflow

        result = run_workflow(small_montage, hybrid_cluster, seed=1)
        out = ascii_gantt(result.execution.trace)
        assert len(out.splitlines()) >= 2
