"""The campaign health model: pure function, single gate, runway."""

from __future__ import annotations

import pytest

from repro.observe import clear_events, recent_events
from repro.runner.health import (
    ADMIT,
    BLOCKED,
    DEGRADED,
    GateDecision,
    HALT,
    HEALTHY,
    HealthPolicy,
    HealthTracker,
    INFRASTRUCTURE,
    OutcomeView,
    PERMANENT,
    SANITIZER,
    THROTTLE,
    TRANSIENT,
    TransientCellError,
    UNSTABLE,
    classify_exception,
    compute_health,
    gate,
    runway_admissions,
)


def ok(sim_success=True):
    return OutcomeView(ok=True, sim_success=sim_success)


def fail(category=PERMANENT, error_type="ValueError"):
    return OutcomeView(ok=False, category=category, error_type=error_type)


# --------------------------------------------------------------------- #
# classification                                                        #
# --------------------------------------------------------------------- #

class _SanitizerError(Exception):
    pass


# Matched by __mro__ class name, like the real one in repro.sanitize.
_SanitizerError.__name__ = "SanitizerError"


@pytest.mark.parametrize("exc,category", [
    (TransientCellError("retry me"), TRANSIENT),
    (TimeoutError("slow"), TRANSIENT),
    (ConnectionError("gone"), TRANSIENT),
    (ValueError("bad cell"), PERMANENT),
    (TypeError("bad config"), PERMANENT),
    (MemoryError(), INFRASTRUCTURE),
    (PermissionError("denied"), INFRASTRUCTURE),
    (OSError("disk full"), INFRASTRUCTURE),
    (_SanitizerError("invariant"), SANITIZER),
])
def test_classify_exception(exc, category):
    assert classify_exception(exc) == category


# --------------------------------------------------------------------- #
# the pure health function                                              #
# --------------------------------------------------------------------- #

def test_empty_history_is_healthy():
    assert compute_health(()) == (HEALTHY, "no history")


def test_all_successes_are_healthy():
    state, _ = compute_health([ok()] * 20)
    assert state == HEALTHY


def test_infrastructure_failure_blocks():
    state, reason = compute_health([ok(), fail(INFRASTRUCTURE, "OSError")])
    assert state == BLOCKED
    assert "infrastructure" in reason


def test_sanitizer_failure_blocks():
    state, _ = compute_health([fail(SANITIZER, "SanitizerError")])
    assert state == BLOCKED


def test_blocked_outranks_every_other_rule():
    """Even buried under successes, an infra last-failure blocks."""
    history = [fail(), fail(), fail(INFRASTRUCTURE), ok(), ok()]
    state, _ = compute_health(history)
    assert state == BLOCKED


def test_three_failures_in_five_is_unstable():
    history = [ok()] * 10 + [
        fail(error_type="A"), ok(), fail(error_type="B"),
        fail(error_type="C"), ok(),
    ]
    state, reason = compute_health(history)
    assert state == UNSTABLE
    assert "3 failures" in reason


def test_same_error_streak_is_degraded():
    history = [ok()] * 10 + [fail(error_type="TypeError")] * 2
    state, reason = compute_health(history)
    assert state == DEGRADED
    assert "TypeError" in reason


def test_mixed_error_tail_is_not_a_streak():
    history = [ok()] * 10 + [fail(error_type="A"), fail(error_type="B")]
    state, _ = compute_health(history)
    assert state == HEALTHY


def test_dead_task_rate_degrades():
    history = [ok(sim_success=False)] * 3 + [ok()] * 5
    state, reason = compute_health(history)
    assert state == DEGRADED
    assert "dead-task" in reason


def test_dead_task_rate_needs_minimum_sample():
    # 2 of 4 dead is over the rate, but under the sample floor.
    history = [ok(sim_success=False)] * 2 + [ok()] * 2
    assert compute_health(history)[0] == HEALTHY


def test_health_is_pure_and_windowed():
    policy = HealthPolicy(window=4)
    # Failures older than the window cannot affect the verdict.
    history = [fail()] * 10 + [ok()] * 4
    assert compute_health(history, policy)[0] == HEALTHY
    assert compute_health(tuple(history), policy) == compute_health(
        tuple(history), policy
    )


# --------------------------------------------------------------------- #
# the single gate                                                       #
# --------------------------------------------------------------------- #

def test_gate_healthy_admits():
    assert gate(HEALTHY).action == ADMIT


@pytest.mark.parametrize("state", [DEGRADED, UNSTABLE])
def test_gate_unhealthy_follows_policy(state):
    assert gate(state, on_unhealthy="throttle").action == THROTTLE
    assert gate(state, on_unhealthy="halt").action == HALT
    assert gate(state, on_unhealthy="ignore").action == ADMIT


@pytest.mark.parametrize("on_unhealthy", ["throttle", "halt", "ignore"])
def test_blocked_cannot_be_overridden(on_unhealthy):
    assert gate(BLOCKED, on_unhealthy=on_unhealthy).action == HALT


def test_gate_rejects_unknown_policy():
    with pytest.raises(ValueError, match="on_unhealthy"):
        gate(HEALTHY, on_unhealthy="shrug")


def test_gate_decision_as_event_merges_extra():
    event = GateDecision(ADMIT, HEALTHY, "fine").as_event(batch=3)
    assert event == {
        "action": ADMIT, "state": HEALTHY, "reason": "fine", "batch": 3,
    }


# --------------------------------------------------------------------- #
# the runway controller                                                 #
# --------------------------------------------------------------------- #

def test_runway_keeps_lead_while_healthy():
    decision = GateDecision(ADMIT, HEALTHY, "")
    assert runway_admissions(0, decision, runway=3) == 3
    assert runway_admissions(2, decision, runway=3) == 1
    assert runway_admissions(3, decision, runway=3) == 0


def test_runway_shrinks_to_one_under_throttle():
    decision = GateDecision(THROTTLE, DEGRADED, "")
    assert runway_admissions(0, decision, runway=3) == 1
    assert runway_admissions(1, decision, runway=3) == 0


def test_runway_admits_nothing_under_halt():
    decision = GateDecision(HALT, BLOCKED, "")
    assert runway_admissions(0, decision, runway=3) == 0


def test_runway_rejects_nonpositive():
    with pytest.raises(ValueError, match="runway"):
        runway_admissions(0, GateDecision(ADMIT, HEALTHY, ""), runway=0)


# --------------------------------------------------------------------- #
# the tracker                                                           #
# --------------------------------------------------------------------- #

def test_tracker_scripted_streak_transitions():
    """healthy -> degraded -> unstable -> blocked under a scripted feed."""
    tracker = HealthTracker(emit=lambda kind, event: None)
    for _ in range(8):
        tracker.observe(ok())
    assert tracker.health()[0] == HEALTHY
    tracker.observe(fail(error_type="TypeError"))
    tracker.observe(fail(error_type="TypeError"))
    assert tracker.health()[0] == DEGRADED
    tracker.observe(fail(error_type="ValueError"))
    assert tracker.health()[0] == UNSTABLE
    tracker.observe(fail(INFRASTRUCTURE, "OSError"))
    assert tracker.health()[0] == BLOCKED
    # blocked is not overridable: even an "ignore" tracker halts.
    ignoring = HealthTracker(on_unhealthy="ignore", emit=lambda k, e: None)
    ignoring.observe(fail(INFRASTRUCTURE, "OSError"))
    assert ignoring.decide().action == HALT


def test_tracker_decide_emits_observe_event():
    clear_events()
    try:
        tracker = HealthTracker()
        tracker.observe(ok())
        decision = tracker.decide(context="admission", batch=7)
        assert decision.action == ADMIT
        events = recent_events("campaign.gate")
        assert len(events) == 1
        assert events[0]["context"] == "admission"
        assert events[0]["batch"] == 7
        assert events[0]["cells_seen"] == 1
        assert tracker.events[-1]["action"] == ADMIT
    finally:
        clear_events()


def test_tracker_maybe_decide_fires_every_check_every():
    tracker = HealthTracker(
        HealthPolicy(check_every=3), emit=lambda kind, event: None
    )
    fired = []
    for i in range(9):
        tracker.observe(ok())
        if tracker.maybe_decide() is not None:
            fired.append(i)
    assert fired == [2, 5, 8]


def test_tracker_rejects_unknown_policy():
    with pytest.raises(ValueError, match="on_unhealthy"):
        HealthTracker(on_unhealthy="nope")
