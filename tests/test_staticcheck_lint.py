"""Determinism-lint tests.

Mutation self-tests (every lint check must fire on a seeded snippet and
stay silent on the blessed idiom), allowlist behaviour, and the
tree-level guarantee the CI gate relies on: the shipped ``src/repro``
source lints clean.
"""

import os
import textwrap

import numpy as np
import pytest

from repro.staticcheck.lint import (
    DEFAULT_ALLOWLIST,
    iter_python_files,
    lint_paths,
    lint_source,
    load_allowlist,
    main as lint_main,
)


def run_lint(snippet, allow=()):
    return lint_source(textwrap.dedent(snippet), path="mod.py", allow=allow)


def checks(findings):
    return {f.check for f in findings}


class TestWallClock:
    def test_time_time_fires(self):
        fs = run_lint("""
            import time
            now = time.time()
        """)
        assert checks(fs) == {"wall-clock"}

    def test_datetime_now_fires(self):
        fs = run_lint("""
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert checks(fs) == {"wall-clock"}

    def test_datetime_module_utcnow_fires(self):
        fs = run_lint("""
            import datetime
            stamp = datetime.datetime.utcnow()
        """)
        assert checks(fs) == {"wall-clock"}

    def test_perf_counter_is_allowed(self):
        fs = run_lint("""
            import time
            t0 = time.perf_counter()
        """)
        assert fs == []

    def test_local_variable_named_time_is_not_flagged(self):
        fs = run_lint("""
            def f(time):
                return time()
        """)
        assert fs == []


class TestGlobalRandom:
    def test_np_random_module_call_fires(self):
        fs = run_lint("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert checks(fs) == {"global-random"}

    def test_stdlib_random_fires(self):
        fs = run_lint("""
            import random
            x = random.random()
        """)
        assert checks(fs) == {"global-random"}

    def test_seeded_generator_draw_is_allowed(self):
        fs = run_lint("""
            import numpy as np
            def f(rng):
                return rng.normal()
        """)
        assert fs == []

    def test_rng_constructors_are_allowed(self):
        fs = run_lint("""
            import numpy as np
            def f(seed):
                seq = np.random.SeedSequence(seed)
                return np.random.Generator(np.random.PCG64(seq))
        """)
        assert fs == []


class TestUnseededRng:
    def test_no_seed_fires(self):
        fs = run_lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert checks(fs) == {"unseeded-rng"}

    def test_constant_literal_seed_fires(self):
        fs = run_lint("""
            import numpy as np
            rng = np.random.default_rng(0)
        """)
        assert checks(fs) == {"unseeded-rng"}

    def test_threaded_seed_is_allowed(self):
        fs = run_lint("""
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed + 7919)
        """)
        assert fs == []

    def test_from_import_alias_is_resolved(self):
        fs = run_lint("""
            from numpy.random import default_rng
            rng = default_rng()
        """)
        assert checks(fs) == {"unseeded-rng"}


class TestSetIteration:
    def test_for_over_set_literal_fires(self):
        fs = run_lint("""
            for x in {"a", "b"}:
                print(x)
        """)
        assert checks(fs) == {"set-iteration"}

    def test_comprehension_over_set_call_fires(self):
        fs = run_lint("""
            def f(xs):
                return [x for x in set(xs)]
        """)
        assert checks(fs) == {"set-iteration"}

    def test_sorted_set_is_allowed(self):
        fs = run_lint("""
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
        """)
        assert fs == []


class TestDictMutation:
    def test_subscript_assign_during_iteration_fires(self):
        fs = run_lint("""
            def f(d):
                for k in d:
                    d[k + 1] = 0
        """)
        assert checks(fs) == {"dict-mutation-in-loop"}

    def test_pop_during_items_iteration_fires(self):
        fs = run_lint("""
            def f(d):
                for k, v in d.items():
                    d.pop(k)
        """)
        assert checks(fs) == {"dict-mutation-in-loop"}

    def test_del_during_iteration_fires(self):
        fs = run_lint("""
            def f(d):
                for k in d.keys():
                    del d[k]
        """)
        assert checks(fs) == {"dict-mutation-in-loop"}

    def test_list_snapshot_is_allowed(self):
        fs = run_lint("""
            def f(d):
                for k in list(d):
                    del d[k]
        """)
        assert fs == []

    def test_mutating_a_different_dict_is_allowed(self):
        fs = run_lint("""
            def f(d, out):
                for k in d:
                    out[k] = d[k]
        """)
        assert fs == []


class TestAmbientEntropy:
    def test_os_urandom_fires(self):
        fs = run_lint("""
            import os
            token = os.urandom(16)
        """)
        assert checks(fs) == {"ambient-entropy"}

    def test_uuid4_fires(self):
        fs = run_lint("""
            import uuid
            run_id = uuid.uuid4()
        """)
        assert checks(fs) == {"ambient-entropy"}

    def test_secrets_fires(self):
        fs = run_lint("""
            import secrets
            tag = secrets.token_hex(8)
        """)
        assert checks(fs) == {"ambient-entropy"}

    def test_seed_derived_id_is_clean(self):
        fs = run_lint("""
            import hashlib
            def run_id(seed):
                return hashlib.sha256(str(seed).encode()).hexdigest()[:12]
        """)
        assert fs == []

    def test_time_ns_is_wall_clock(self):
        fs = run_lint("""
            import time
            stamp = time.time_ns()
        """)
        assert checks(fs) == {"wall-clock"}


class TestHashOrdering:
    def test_sorted_key_hash_fires(self):
        fs = run_lint("""
            def stable(names):
                return sorted(names, key=hash)
        """)
        assert checks(fs) == {"hash-ordering"}

    def test_lambda_wrapping_hash_fires(self):
        fs = run_lint("""
            def stable(pairs):
                return sorted(pairs, key=lambda p: hash(p[0]))
        """)
        assert checks(fs) == {"hash-ordering"}

    def test_min_key_hash_fires(self):
        fs = run_lint("""
            def pick(names):
                return min(names, key=hash)
        """)
        assert checks(fs) == {"hash-ordering"}

    def test_value_key_is_clean(self):
        fs = run_lint("""
            def stable(pairs):
                return sorted(pairs, key=lambda p: p[0])
        """)
        assert fs == []


class TestFsOrdering:
    def test_for_loop_over_listdir_fires(self):
        fs = run_lint("""
            import os
            def names(d):
                out = []
                for name in os.listdir(d):
                    out.append(name)
                return out
        """)
        assert checks(fs) == {"fs-ordering"}

    def test_comprehension_over_glob_fires(self):
        fs = run_lint("""
            import glob
            def shards(d):
                return [p for p in glob.glob(d + "/*.jsonl")]
        """)
        assert checks(fs) == {"fs-ordering"}

    def test_sorted_listing_is_clean(self):
        fs = run_lint("""
            import os
            def names(d):
                return [n for n in sorted(os.listdir(d))]
        """)
        assert fs == []

    def test_order_insensitive_reduction_is_clean(self):
        fs = run_lint("""
            import os
            def count(d):
                return sum(1 for f in os.listdir(d) if f.endswith(".json"))
        """)
        assert fs == []


class TestAllowlist:
    def test_allow_entry_suppresses_matching_check(self):
        snippet = """
            import time
            now = time.time()
        """
        assert run_lint(snippet, allow=[("mod.py", "wall-clock")]) == []
        # Wrong check id does not suppress.
        assert run_lint(snippet, allow=[("mod.py", "global-random")]) != []
        # Non-matching path does not suppress.
        assert run_lint(snippet, allow=[("other.py", "wall-clock")]) != []

    def test_load_allowlist_parses_and_rejects(self, tmp_path):
        good = tmp_path / "allow.txt"
        good.write_text(
            "# comment\n"
            "src/foo.py::wall-clock  # trailing comment\n"
            "\n"
            "bar::set-iteration\n"
            "src/baz.py::worker-global-mutation::_memo  # sited entry\n",
            encoding="utf-8",
        )
        assert load_allowlist(str(good)) == [
            ("src/foo.py", "wall-clock", None),
            ("bar", "set-iteration", None),
            ("src/baz.py", "worker-global-mutation", "_memo"),
        ]
        bad = tmp_path / "bad.txt"
        bad.write_text("no-separator-here\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_allowlist(str(bad))

    def test_sited_entry_suppresses_only_its_site(self):
        snippet = """
            import time
            now = time.time()
        """
        # Site substring present in the message -> suppressed.
        assert run_lint(
            snippet, allow=[("mod.py", "wall-clock", "time.time")]
        ) == []
        # Site substring matching the location line also suppresses.
        assert run_lint(
            snippet, allow=[("mod.py", "wall-clock", "mod.py:3")]
        ) == []
        # Non-matching site leaves the finding alone.
        assert run_lint(
            snippet, allow=[("mod.py", "wall-clock", "monotonic")]
        ) != []

    def test_allow_match_records_used_entries(self):
        from repro.staticcheck.lint import allow_match

        used = set()
        assert allow_match(
            [("mod.py", "wall-clock", None)], "mod.py", "wall-clock",
            used=used,
        )
        assert used == {("mod.py", "wall-clock", None)}


class TestStaleAllowlist:
    def test_stale_entry_fails_and_prune_fixes(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import time\nnow = time.time()\n",
                          encoding="utf-8")
        allowfile = tmp_path / "allow.txt"
        allowfile.write_text(
            "mod.py::wall-clock  # live\n"
            "mod.py::set-iteration  # stale: nothing to suppress\n",
            encoding="utf-8",
        )
        rc = lint_main([str(target), "--allowlist", str(allowfile)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale allowlist entry" in out
        assert "--prune" in out
        # --prune rewrites the file and the run goes green.
        rc = lint_main([str(target), "--allowlist", str(allowfile),
                        "--prune"])
        assert rc == 0
        kept = allowfile.read_text(encoding="utf-8")
        assert "wall-clock" in kept and "set-iteration" not in kept

    def test_out_of_scope_entries_are_not_stale(self, tmp_path):
        # An entry whose path matches no linted file is neither live nor
        # stale — the packaged allowlist must not trip runs on tmp trees.
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        allowfile = tmp_path / "allow.txt"
        allowfile.write_text("src/repro/observe/clock.py::wall-clock\n",
                             encoding="utf-8")
        assert lint_main([str(target), "--allowlist", str(allowfile)]) == 0

    def test_deep_check_entries_need_deep_run_to_go_stale(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n", encoding="utf-8")
        allowfile = tmp_path / "allow.txt"
        allowfile.write_text("mod.py::taint-flow\n", encoding="utf-8")
        # Shallow run: taint-flow never ran, entry is out of scope.
        assert lint_main([str(target), "--allowlist", str(allowfile)]) == 0
        # Deep run: the check ran, suppressed nothing -> stale.
        assert lint_main([str(target), "--allowlist", str(allowfile),
                          "--deep"]) == 1


class TestBaseline:
    def write_baseline(self, tmp_path, entries):
        import json

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "schema": "repro.staticcheck-baseline/v1",
            "entries": entries,
        }), encoding="utf-8")
        return str(path)

    def test_baselined_finding_demotes_to_warning(self, tmp_path, capsys):
        import json

        target = tmp_path / "mod.py"
        target.write_text(
            "def payload(x):\n    return {'fn': lambda: x}\n",
            encoding="utf-8",
        )
        baseline = self.write_baseline(tmp_path, [{
            "check": "pickle-lambda", "path": "mod.py",
            "contains": "lambda",
            "reason": "legacy; burn-down tracked in ISSUE",
        }])
        json_out = tmp_path / "f.json"
        # Without the baseline the deep finding fails the run...
        assert lint_main([
            str(target), "--deep",
            "--allowlist", os.path.join(str(tmp_path), "none.txt"),
        ]) == 1
        capsys.readouterr()
        # ...with it, the finding demotes to a warning (not dropped).
        rc = lint_main([
            str(target), "--deep", "--baseline", baseline,
            "--allowlist", os.path.join(str(tmp_path), "none.txt"),
            "--json", str(json_out),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[baselined]" in out
        doc = json.loads(json_out.read_text())
        assert doc["counts"] == {"error": 0, "warning": 1, "total": 1}

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        baseline = self.write_baseline(tmp_path, [{
            "check": "taint-flow", "path": "gone.py",
            "contains": "wall-clock", "reason": "burnt down",
        }])
        rc = lint_main([str(target), "--deep", "--baseline", baseline])
        out = capsys.readouterr().out
        assert rc == 1
        assert "stale baseline entry" in out

    def test_bad_schema_rejected(self, tmp_path):
        import json

        from repro.staticcheck.lint import load_baseline

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": "nope/v9", "entries": []}),
                        encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(str(path))

    def test_shipped_baseline_is_empty(self):
        # The deep gate currently has zero legacy debt; anything that
        # lands in the baseline must be a deliberate burn-down decision.
        from repro.staticcheck.lint import DEFAULT_BASELINE, load_baseline

        assert load_baseline(DEFAULT_BASELINE) == []


class TestExports:
    def findings(self):
        return lint_source(
            "import time\nnow = time.time()\n", path="src/mod.py"
        )

    def test_json_export_schema(self):
        from repro.staticcheck.findings import findings_to_json

        doc = findings_to_json(self.findings())
        assert doc["schema"] == "repro.staticcheck-findings/v1"
        assert doc["counts"] == {"error": 1, "warning": 0, "total": 1}
        assert doc["findings"][0]["check"] == "wall-clock"
        assert doc["findings"][0]["location"] == "src/mod.py:2"

    def test_sarif_export_shape(self):
        from repro.staticcheck.findings import findings_to_sarif

        doc = findings_to_sarif(self.findings())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-staticcheck"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "wall-clock"
        ]
        result = run["results"][0]
        assert result["ruleId"] == "wall-clock"
        assert result["level"] == "error"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/mod.py"
        assert loc["region"]["startLine"] == 2

    def test_summary_table_shows_zero_rows(self):
        from repro.staticcheck.findings import summary_table

        table = summary_table(self.findings(),
                              checks=["wall-clock", "taint-flow"])
        lines = table.splitlines()
        assert any("wall-clock" in l and " 1" in l for l in lines)
        assert any("taint-flow" in l and " 0" in l for l in lines)

    def test_cli_writes_both_reports(self, tmp_path):
        import json

        target = tmp_path / "mod.py"
        target.write_text("import time\nnow = time.time()\n",
                          encoding="utf-8")
        json_out = tmp_path / "out" / "findings.json"
        sarif_out = tmp_path / "out" / "findings.sarif"
        rc = lint_main([str(target), "--json", str(json_out),
                        "--sarif", str(sarif_out)])
        assert rc == 1
        assert json.loads(json_out.read_text())["counts"]["error"] == 1
        sarif = json.loads(sarif_out.read_text())
        assert sarif["runs"][0]["results"][0]["ruleId"] == "wall-clock"


class TestTreeLint:
    def repro_src(self):
        import repro

        return os.path.dirname(os.path.abspath(repro.__file__))

    def test_src_repro_lints_clean(self):
        findings = lint_paths([self.repro_src()],
                              allowlist_file=DEFAULT_ALLOWLIST)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_iter_python_files_expands_and_dedups(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n", encoding="utf-8")
        (tmp_path / "sub" / "c.txt").write_text("no\n", encoding="utf-8")
        files = iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
        assert [os.path.basename(f) for f in files] == ["a.py", "b.py"]

    def test_lint_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n", encoding="utf-8")
        assert lint_main([str(dirty)]) == 1
        assert "wall-clock" in capsys.readouterr().out


class TestRngThreading:
    """Satellite of the lint fix: estimate error now requires a caller rng."""

    def test_context_requires_rng_for_estimate_error(
        self, small_montage, hybrid_cluster
    ):
        from repro.schedulers.base import SchedulingContext

        with pytest.raises(ValueError, match="caller-supplied rng"):
            SchedulingContext(small_montage, hybrid_cluster,
                              estimate_error_cv=0.5)

    def test_context_accepts_threaded_rng(self, small_montage, hybrid_cluster):
        from repro.schedulers.base import SchedulingContext

        ctx = SchedulingContext(small_montage, hybrid_cluster,
                                estimate_error_cv=0.5,
                                rng=np.random.default_rng(11))
        assert ctx.workflow is small_montage
