"""Determinism-lint tests.

Mutation self-tests (every lint check must fire on a seeded snippet and
stay silent on the blessed idiom), allowlist behaviour, and the
tree-level guarantee the CI gate relies on: the shipped ``src/repro``
source lints clean.
"""

import os
import textwrap

import numpy as np
import pytest

from repro.staticcheck.lint import (
    DEFAULT_ALLOWLIST,
    iter_python_files,
    lint_paths,
    lint_source,
    load_allowlist,
    main as lint_main,
)


def run_lint(snippet, allow=()):
    return lint_source(textwrap.dedent(snippet), path="mod.py", allow=allow)


def checks(findings):
    return {f.check for f in findings}


class TestWallClock:
    def test_time_time_fires(self):
        fs = run_lint("""
            import time
            now = time.time()
        """)
        assert checks(fs) == {"wall-clock"}

    def test_datetime_now_fires(self):
        fs = run_lint("""
            from datetime import datetime
            stamp = datetime.now()
        """)
        assert checks(fs) == {"wall-clock"}

    def test_datetime_module_utcnow_fires(self):
        fs = run_lint("""
            import datetime
            stamp = datetime.datetime.utcnow()
        """)
        assert checks(fs) == {"wall-clock"}

    def test_perf_counter_is_allowed(self):
        fs = run_lint("""
            import time
            t0 = time.perf_counter()
        """)
        assert fs == []

    def test_local_variable_named_time_is_not_flagged(self):
        fs = run_lint("""
            def f(time):
                return time()
        """)
        assert fs == []


class TestGlobalRandom:
    def test_np_random_module_call_fires(self):
        fs = run_lint("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert checks(fs) == {"global-random"}

    def test_stdlib_random_fires(self):
        fs = run_lint("""
            import random
            x = random.random()
        """)
        assert checks(fs) == {"global-random"}

    def test_seeded_generator_draw_is_allowed(self):
        fs = run_lint("""
            import numpy as np
            def f(rng):
                return rng.normal()
        """)
        assert fs == []

    def test_rng_constructors_are_allowed(self):
        fs = run_lint("""
            import numpy as np
            def f(seed):
                seq = np.random.SeedSequence(seed)
                return np.random.Generator(np.random.PCG64(seq))
        """)
        assert fs == []


class TestUnseededRng:
    def test_no_seed_fires(self):
        fs = run_lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert checks(fs) == {"unseeded-rng"}

    def test_constant_literal_seed_fires(self):
        fs = run_lint("""
            import numpy as np
            rng = np.random.default_rng(0)
        """)
        assert checks(fs) == {"unseeded-rng"}

    def test_threaded_seed_is_allowed(self):
        fs = run_lint("""
            import numpy as np
            def f(seed):
                return np.random.default_rng(seed + 7919)
        """)
        assert fs == []

    def test_from_import_alias_is_resolved(self):
        fs = run_lint("""
            from numpy.random import default_rng
            rng = default_rng()
        """)
        assert checks(fs) == {"unseeded-rng"}


class TestSetIteration:
    def test_for_over_set_literal_fires(self):
        fs = run_lint("""
            for x in {"a", "b"}:
                print(x)
        """)
        assert checks(fs) == {"set-iteration"}

    def test_comprehension_over_set_call_fires(self):
        fs = run_lint("""
            def f(xs):
                return [x for x in set(xs)]
        """)
        assert checks(fs) == {"set-iteration"}

    def test_sorted_set_is_allowed(self):
        fs = run_lint("""
            def f(xs):
                for x in sorted(set(xs)):
                    print(x)
        """)
        assert fs == []


class TestDictMutation:
    def test_subscript_assign_during_iteration_fires(self):
        fs = run_lint("""
            def f(d):
                for k in d:
                    d[k + 1] = 0
        """)
        assert checks(fs) == {"dict-mutation-in-loop"}

    def test_pop_during_items_iteration_fires(self):
        fs = run_lint("""
            def f(d):
                for k, v in d.items():
                    d.pop(k)
        """)
        assert checks(fs) == {"dict-mutation-in-loop"}

    def test_del_during_iteration_fires(self):
        fs = run_lint("""
            def f(d):
                for k in d.keys():
                    del d[k]
        """)
        assert checks(fs) == {"dict-mutation-in-loop"}

    def test_list_snapshot_is_allowed(self):
        fs = run_lint("""
            def f(d):
                for k in list(d):
                    del d[k]
        """)
        assert fs == []

    def test_mutating_a_different_dict_is_allowed(self):
        fs = run_lint("""
            def f(d, out):
                for k in d:
                    out[k] = d[k]
        """)
        assert fs == []


class TestAllowlist:
    def test_allow_entry_suppresses_matching_check(self):
        snippet = """
            import time
            now = time.time()
        """
        assert run_lint(snippet, allow=[("mod.py", "wall-clock")]) == []
        # Wrong check id does not suppress.
        assert run_lint(snippet, allow=[("mod.py", "global-random")]) != []
        # Non-matching path does not suppress.
        assert run_lint(snippet, allow=[("other.py", "wall-clock")]) != []

    def test_load_allowlist_parses_and_rejects(self, tmp_path):
        good = tmp_path / "allow.txt"
        good.write_text(
            "# comment\n"
            "src/foo.py::wall-clock  # trailing comment\n"
            "\n"
            "bar::set-iteration\n",
            encoding="utf-8",
        )
        assert load_allowlist(str(good)) == [
            ("src/foo.py", "wall-clock"),
            ("bar", "set-iteration"),
        ]
        bad = tmp_path / "bad.txt"
        bad.write_text("no-separator-here\n", encoding="utf-8")
        with pytest.raises(ValueError):
            load_allowlist(str(bad))


class TestTreeLint:
    def repro_src(self):
        import repro

        return os.path.dirname(os.path.abspath(repro.__file__))

    def test_src_repro_lints_clean(self):
        findings = lint_paths([self.repro_src()],
                              allowlist_file=DEFAULT_ALLOWLIST)
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_iter_python_files_expands_and_dedups(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.py").write_text("y = 2\n", encoding="utf-8")
        (tmp_path / "sub" / "c.txt").write_text("no\n", encoding="utf-8")
        files = iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
        assert [os.path.basename(f) for f in files] == ["a.py", "b.py"]

    def test_lint_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nnow = time.time()\n", encoding="utf-8")
        assert lint_main([str(dirty)]) == 1
        assert "wall-clock" in capsys.readouterr().out


class TestRngThreading:
    """Satellite of the lint fix: estimate error now requires a caller rng."""

    def test_context_requires_rng_for_estimate_error(
        self, small_montage, hybrid_cluster
    ):
        from repro.schedulers.base import SchedulingContext

        with pytest.raises(ValueError, match="caller-supplied rng"):
            SchedulingContext(small_montage, hybrid_cluster,
                              estimate_error_cv=0.5)

    def test_context_accepts_threaded_rng(self, small_montage, hybrid_cluster):
        from repro.schedulers.base import SchedulingContext

        ctx = SchedulingContext(small_montage, hybrid_cluster,
                                estimate_error_cv=0.5,
                                rng=np.random.default_rng(11))
        assert ctx.workflow is small_montage
