"""Tests for the scientific workflow generators."""

import pytest

from repro.platform.devices import DeviceClass
from repro.workflows.generators import (
    ALL_GENERATORS,
    SCIENTIFIC_SUITES,
    blast,
    by_name,
    cybershake,
    epigenomics,
    layered_dag,
    ligo_inspiral,
    ml_pipeline,
    montage,
    random_dag,
    sipht,
)
from repro.workflows.validate import validate_workflow


class TestGeneric:
    @pytest.mark.parametrize("name", sorted(ALL_GENERATORS))
    def test_generates_valid_dag(self, name):
        wf = by_name(name, seed=3)
        validate_workflow(wf)
        assert wf.is_acyclic()
        assert wf.n_tasks > 0

    @pytest.mark.parametrize("name", sorted(ALL_GENERATORS))
    def test_deterministic_given_seed(self, name):
        a = by_name(name, seed=9)
        b = by_name(name, seed=9)
        assert set(a.tasks) == set(b.tasks)
        assert all(a.tasks[t].work == b.tasks[t].work for t in a.tasks)
        assert all(a.files[f].size_mb == b.files[f].size_mb for f in a.files)

    @pytest.mark.parametrize("name", sorted(ALL_GENERATORS))
    def test_different_seed_different_draws(self, name):
        a = by_name(name, seed=1)
        b = by_name(name, seed=2)
        if set(a.tasks) == set(b.tasks):
            assert any(a.tasks[t].work != b.tasks[t].work for t in a.tasks)

    @pytest.mark.parametrize("name", sorted(SCIENTIFIC_SUITES))
    @pytest.mark.parametrize("size", [20, 50, 120])
    def test_size_parameter_roughly_honored(self, name, size):
        wf = SCIENTIFIC_SUITES[name](size=size, seed=0)
        assert 0.5 * size <= wf.n_tasks <= 2.0 * size

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            by_name("nonesuch")


class TestMontage:
    def test_stage_structure(self):
        wf = montage(n_images=6, seed=0)
        cats = wf.categories()
        assert cats["mProject"] == 6
        assert cats["mBackground"] == 6
        assert cats["mConcatFit"] == 1
        assert cats["mAdd"] == 1
        # mDiffFit over overlapping pairs with degree 2: 2n-3 pairs
        assert cats["mDiffFit"] == 2 * 6 - 3

    def test_projection_is_gpu_accelerable(self):
        wf = montage(n_images=4, seed=0)
        t = wf.tasks["mProject_0"]
        assert t.affinity_for(DeviceClass.GPU) > 1.0

    def test_tail_is_sequential(self):
        wf = montage(n_images=4, seed=0)
        assert wf.successors("mAdd") == ["mShrink"]
        assert wf.successors("mShrink") == ["mJPEG"]
        assert wf.exit_tasks() == ["mJPEG"]

    def test_too_few_images_rejected(self):
        with pytest.raises(ValueError):
            montage(n_images=1)


class TestCybershake:
    def test_structure(self):
        wf = cybershake(n_variations=5, seed=0)
        cats = wf.categories()
        assert cats["ExtractSGT"] == 5
        assert cats["SeismogramSynthesis"] == 5
        assert cats["PeakValCalcOkaya"] == 5
        assert cats["ZipSeis"] == 1
        assert cats["ZipPSA"] == 1

    def test_synthesis_dominates_and_accelerates(self):
        wf = cybershake(n_variations=3, seed=0)
        synth = wf.tasks["SeismogramSynthesis_0"]
        extract = wf.tasks["ExtractSGT_0"]
        assert synth.work > extract.work
        assert synth.affinity_for(DeviceClass.GPU) > 10

    def test_sgt_files_are_large_initial(self):
        wf = cybershake(n_variations=3, seed=0)
        assert wf.files["sgt_x.bin"].initial
        assert wf.files["sgt_x.bin"].size_mb > 500


class TestEpigenomics:
    def test_chain_depth(self):
        wf = epigenomics(n_lanes=1, chunks_per_lane=2, seed=0)
        # split -> filter -> sol2sanger -> fastq2bfq -> map -> merge ->
        # index -> pileup = 8 levels
        assert len(wf.levels()) == 8

    def test_lane_isolation_until_index(self):
        wf = epigenomics(n_lanes=2, chunks_per_lane=2, seed=0)
        assert "maqIndex" in wf.successors("mapMerge_l0")
        assert "maqIndex" in wf.successors("mapMerge_l1")

    def test_map_is_heavy_and_accelerable(self):
        wf = epigenomics(n_lanes=1, chunks_per_lane=2, seed=0)
        m = wf.tasks["map_l0_0"]
        assert m.affinity_for(DeviceClass.FPGA) > 1
        assert m.work > wf.tasks["sol2sanger_l0_0"].work

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            epigenomics(n_lanes=0, chunks_per_lane=1)


class TestLigo:
    def test_two_wave_structure(self):
        wf = ligo_inspiral(n_segments=6, group_size=3, seed=0)
        cats = wf.categories()
        assert cats["TmpltBank"] == 6
        assert cats["Inspiral"] == 6
        assert cats["Thinca"] == 2
        assert cats["Inspiral2"] == 6
        assert cats["Thinca2"] == 2

    def test_second_wave_depends_on_first(self):
        wf = ligo_inspiral(n_segments=4, group_size=2, seed=0)
        assert "Thinca_0" in wf.predecessors("TrigBank_0")

    def test_uneven_group_sizes(self):
        wf = ligo_inspiral(n_segments=5, group_size=3, seed=0)
        assert wf.categories()["Thinca"] == 2  # groups of 3 and 2


class TestSipht:
    def test_structure(self):
        wf = sipht(n_patser=8, seed=0)
        cats = wf.categories()
        assert cats["Patser"] == 8
        assert cats["SRNA"] == 1
        assert cats["SRNAAnnotate"] == 1

    def test_findterm_dominates(self):
        wf = sipht(n_patser=5, seed=0)
        findterm = wf.tasks["Findterm"].work
        assert findterm > wf.tasks["Transterm"].work
        assert findterm > wf.tasks["RNAMotif"].work

    def test_blast_prefers_fpga(self):
        wf = sipht(n_patser=5, seed=0)
        b = wf.tasks["Blast"]
        assert b.affinity_for(DeviceClass.FPGA) > b.affinity_for(DeviceClass.GPU)


class TestSoykb:
    def test_structure(self):
        from repro.workflows.generators import soykb

        wf = soykb(n_samples=4, seed=0)
        cats = wf.categories()
        assert cats["alignment"] == 4
        assert cats["haplotypeCaller"] == 4
        assert cats["combineGVCF"] == 1
        assert wf.exit_tasks() == ["filterVariants"]

    def test_chain_depth(self):
        from repro.workflows.generators import soykb

        # align -> sort -> dedup -> realign -> call -> combine ->
        # genotype -> filter = 8 levels
        wf = soykb(n_samples=2, seed=0)
        assert len(wf.levels()) == 8

    def test_alignment_accelerable(self):
        from repro.platform.devices import DeviceClass
        from repro.workflows.generators import soykb

        wf = soykb(n_samples=2, seed=0)
        t = wf.tasks["alignment_0"]
        assert t.affinity_for(DeviceClass.FPGA) > t.affinity_for(
            DeviceClass.GPU
        ) > 1.0

    def test_runs_end_to_end(self):
        from repro import run_workflow
        from repro.platform import presets
        from repro.workflows.generators import soykb

        result = run_workflow(
            soykb(n_samples=3, seed=1),
            presets.hybrid_cluster(nodes=2, cores_per_node=2),
            seed=1,
        )
        assert result.success


class TestSynthetic:
    def test_blast_scatter_gather(self):
        wf = blast(n_chunks=10, seed=0)
        assert wf.categories()["blastall"] == 10
        assert len(wf.levels()) == 3

    def test_ml_pipeline_structure(self):
        wf = ml_pipeline(n_shards=4, n_folds=3, seed=0)
        cats = wf.categories()
        assert cats["train"] == 4  # 3 folds + final
        assert cats["featurize"] == 4
        assert wf.exit_tasks() == ["evaluate_report"]

    def test_random_dag_ccr_targeting(self):
        for target in (0.2, 1.0, 5.0):
            wf = random_dag(n_tasks=300, ccr=target, seed=1)
            assert wf.ccr() == pytest.approx(target, rel=0.5)

    def test_random_dag_zero_ccr(self):
        wf = random_dag(n_tasks=50, ccr=0.0, seed=0)
        assert wf.total_edge_data_mb() == 0.0

    def test_random_dag_task_count_exact(self):
        assert random_dag(n_tasks=77, seed=0).n_tasks == 77

    def test_random_dag_invalid_params(self):
        with pytest.raises(ValueError):
            random_dag(n_tasks=0)
        with pytest.raises(ValueError):
            random_dag(n_tasks=5, ccr=-1)

    def test_layered_shape(self):
        wf = layered_dag(layers=4, width=5, seed=0)
        assert wf.n_tasks == 20
        assert len(wf.levels()) == 4
        assert all(len(level) == 5 for level in wf.levels())

    def test_layered_full_fan_in(self):
        wf = layered_dag(layers=3, width=3, fan_in=None, seed=0)
        assert len(wf.predecessors("l1_t0")) == 3

    def test_layered_sparse_fan_in(self):
        wf = layered_dag(layers=3, width=5, fan_in=2, seed=0)
        assert all(
            len(wf.predecessors(f"l1_t{i}")) == 2 for i in range(5)
        )

    def test_layered_invalid(self):
        with pytest.raises(ValueError):
            layered_dag(layers=0, width=5)
