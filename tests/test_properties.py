"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.cache import EvictionError, NodeStore
from repro.schedulers.schedule import DeviceTimeline
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.workflows.generators import layered_dag, random_dag


# --------------------------------------------------------------------- #
# simulator                                                             #
# --------------------------------------------------------------------- #

@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
def test_simulator_fires_in_nondecreasing_time(delays):
    sim = Simulator()
    fired_times = []
    for d in delays:
        sim.schedule(d, lambda t=d: fired_times.append(sim.now))
    sim.run()
    assert fired_times == sorted(fired_times)
    assert len(fired_times) == len(delays)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                max_size=30))
def test_simulator_clock_is_max_delay(delays):
    sim = Simulator()
    for d in delays:
        sim.schedule(d, lambda: None)
    sim.run()
    assert sim.now == pytest.approx(max(delays))


# --------------------------------------------------------------------- #
# rng                                                                   #
# --------------------------------------------------------------------- #

@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1,
                                                          max_size=20))
@settings(max_examples=30)
def test_rng_streams_reproducible(seed, name):
    a = RngStreams(seed).stream(name).random()
    b = RngStreams(seed).stream(name).random()
    assert a == b


# --------------------------------------------------------------------- #
# device timeline                                                       #
# --------------------------------------------------------------------- #

@given(st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1000.0),
              st.floats(min_value=0.01, max_value=50.0)),
    max_size=40,
))
def test_timeline_earliest_fit_never_overlaps(jobs):
    """Placing every job at its earliest_fit must keep intervals disjoint."""
    tl = DeviceTimeline("d")
    for i, (ready, duration) in enumerate(jobs):
        start = tl.earliest_fit(ready, duration)
        assert start >= ready
        tl.add(start, start + duration, f"t{i}")
    intervals = tl.intervals
    for (s0, e0, _a), (s1, _e1, _b) in zip(intervals, intervals[1:]):
        assert e0 <= s1 + 1e-9


@given(st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1000.0),
              st.floats(min_value=0.01, max_value=50.0)),
    min_size=1, max_size=40,
))
def test_timeline_busy_time_equals_sum_of_durations(jobs):
    tl = DeviceTimeline("d")
    total = 0.0
    for i, (ready, duration) in enumerate(jobs):
        start = tl.earliest_fit(ready, duration)
        tl.add(start, start + duration, f"t{i}")
        total += duration
    assert tl.busy_time() == pytest.approx(total)


# --------------------------------------------------------------------- #
# node store                                                            #
# --------------------------------------------------------------------- #

@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=30),
              st.floats(min_value=0.1, max_value=60.0)),
    max_size=60,
))
def test_node_store_never_exceeds_capacity(puts):
    store = NodeStore("n", 100.0)
    for fid, size in puts:
        try:
            store.put(f"f{fid}", size)
        except EvictionError:
            pass
        assert store.used_mb <= 100.0 + 1e-9


@given(st.lists(st.integers(min_value=0, max_value=10), min_size=1,
                max_size=50))
def test_node_store_lru_keeps_most_recent(accesses):
    """After any access sequence, the most recently put file is resident."""
    store = NodeStore("n", 50.0)
    last = None
    for fid in accesses:
        store.put(f"f{fid}", 10.0)
        last = f"f{fid}"
    assert store.has(last)


# --------------------------------------------------------------------- #
# generators                                                            #
# --------------------------------------------------------------------- #

@given(st.integers(min_value=1, max_value=60),
       st.floats(min_value=0.0, max_value=8.0),
       st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None)
def test_random_dag_always_valid(n_tasks, ccr, seed):
    from repro.workflows.validate import validate_workflow

    wf = random_dag(n_tasks=n_tasks, ccr=ccr, seed=seed)
    validate_workflow(wf)
    assert wf.n_tasks == n_tasks
    assert wf.is_acyclic()


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=25, deadline=None)
def test_layered_dag_always_valid(layers, width, seed):
    from repro.workflows.validate import validate_workflow

    wf = layered_dag(layers=layers, width=width, seed=seed)
    validate_workflow(wf)
    assert wf.n_tasks == layers * width
    assert len(wf.levels()) == layers


# --------------------------------------------------------------------- #
# scheduling invariants                                                 #
# --------------------------------------------------------------------- #

@given(st.integers(min_value=5, max_value=25),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=15, deadline=None)
def test_heft_schedule_always_feasible(n_tasks, seed):
    from repro.platform import presets
    from repro.schedulers.base import SchedulingContext
    from repro.schedulers.heft import HeftScheduler

    wf = random_dag(n_tasks=n_tasks, ccr=1.0, seed=seed)
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
    schedule = HeftScheduler().schedule(SchedulingContext(wf, cluster))
    schedule.validate_against(wf)


@given(st.integers(min_value=5, max_value=20),
       st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None)
def test_execution_respects_precedence_under_noise(n_tasks, seed):
    from repro import run_workflow
    from repro.platform import presets

    wf = random_dag(n_tasks=n_tasks, ccr=0.5, seed=seed)
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
    result = run_workflow(wf, cluster, seed=seed, noise_cv=0.5)
    assert result.success
    for name, rec in result.execution.records.items():
        for pred in wf.predecessors(name):
            assert result.execution.records[pred].finish <= rec.start + 1e-9
