"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_scheduler_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "nonesuch"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "hdws" in out
        assert "montage" in out
        assert "t1" in out

    def test_run_basic(self, capsys):
        rc = main(["run", "--workflow", "blast", "--size", "12",
                   "--cluster", "workstation", "--noise", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "success" in out

    def test_run_with_gantt(self, capsys):
        rc = main(["run", "--workflow", "montage", "--size", "15",
                   "--cluster", "workstation", "--gantt", "--noise", "0"])
        assert rc == 0
        assert "#" in capsys.readouterr().out

    def test_run_dynamic_mode(self, capsys):
        rc = main(["run", "--workflow", "montage", "--size", "15",
                   "--mode", "dynamic", "--cluster", "workstation"])
        assert rc == 0

    def test_compare(self, capsys):
        rc = main(["compare", "--workflow", "sipht", "--size", "15",
                   "--schedulers", "heft,minmin", "--cluster", "workstation"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "heft" in out and "minmin" in out

    def test_compare_unknown_scheduler_errors(self, capsys):
        rc = main(["compare", "--schedulers", "heft,zzz"])
        assert rc == 2

    def test_generate_to_stdout(self, capsys):
        rc = main(["generate", "--workflow", "ligo", "--size", "20"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tasks"]

    def test_generate_to_file(self, tmp_path, capsys):
        path = str(tmp_path / "wf.json")
        rc = main(["generate", "--workflow", "montage", "--size", "15",
                   "--output", path])
        assert rc == 0
        with open(path) as fh:
            assert json.load(fh)["tasks"]

    def test_exp_quick(self, capsys):
        rc = main(["exp", "f7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "F7" in out

    def test_ensemble(self, capsys):
        rc = main(["ensemble", "--members", "montage:15,blast:12",
                   "--cluster", "workstation"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "shared" in out and "sequential" in out

    def test_ensemble_unknown_member_errors(self, capsys):
        rc = main(["ensemble", "--members", "montage,unicorn"])
        assert rc == 2
