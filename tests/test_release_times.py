"""Tests for online arrivals (release times) across the stack."""

import pytest

from repro import run_workflow
from repro.core.ensemble import EnsembleMember, EnsembleRunner
from repro.core.orchestrator import RunConfig
from repro.platform import presets
from repro.schedulers.base import SchedulingContext, eft_placement
from repro.schedulers.heft import HeftScheduler
from repro.schedulers.schedule import Schedule
from repro.workflows.generators import blast, montage
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, cpu_task


@pytest.fixture
def chain_wf():
    wf = Workflow("chain")
    wf.add_file(DataFile("ab", 0.001))
    wf.add_task(cpu_task("a", 10.0, outputs=("ab",)))
    wf.add_task(cpu_task("b", 10.0, inputs=("ab",)))
    return wf


class TestContextReleases:
    def test_eft_respects_release(self, chain_wf, cpu_cluster):
        ctx = SchedulingContext(
            chain_wf, cpu_cluster, release_times={"a": 7.0}
        )
        device = ctx.eligible_devices("a")[0]
        start, _finish = eft_placement(ctx, Schedule(), "a", device)
        assert start >= 7.0

    def test_plan_honors_releases(self, chain_wf, cpu_cluster):
        ctx = SchedulingContext(
            chain_wf, cpu_cluster, release_times={"a": 5.0}
        )
        plan = HeftScheduler().schedule(ctx)
        assert plan.assignments["a"].start >= 5.0
        assert plan.assignments["b"].start >= plan.assignments["a"].finish

    def test_no_release_means_zero(self, chain_wf, cpu_cluster):
        ctx = SchedulingContext(chain_wf, cpu_cluster)
        plan = HeftScheduler().schedule(ctx)
        assert plan.assignments["a"].start < 1.0


class TestExecutorReleases:
    @pytest.mark.parametrize("mode", ["static", "dynamic", "adaptive"])
    def test_task_never_starts_before_release(self, mode):
        wf = montage(n_images=5, seed=1)
        entry = wf.entry_tasks()[0]
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        result = run_workflow(
            wf, cluster, mode=mode, seed=1,
            release_times={entry: 3.0},
        )
        assert result.success
        assert result.execution.records[entry].start >= 3.0

    def test_release_delays_makespan(self):
        wf = montage(n_images=5, seed=1)
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        free = run_workflow(wf, cluster, seed=1)
        gated = run_workflow(
            wf, cluster, seed=1,
            release_times={t: 10.0 for t in wf.entry_tasks()},
        )
        assert gated.makespan >= 10.0
        assert gated.makespan > free.makespan


class TestOnlineEnsemble:
    def test_arrivals_gate_members(self):
        members = [
            EnsembleMember("a", montage(size=20, seed=1), arrival=0.0),
            EnsembleMember("b", blast(size=15, seed=2), arrival=8.0),
        ]
        runner = EnsembleRunner(
            presets.hybrid_cluster(nodes=2), RunConfig(seed=1)
        )
        res = runner.run(members, discipline="online")
        assert res.success
        assert res.member_finish["b"] > 8.0

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            EnsembleMember("x", montage(size=10, seed=1), arrival=-1.0)

    def test_online_reduces_to_shared_when_all_zero(self):
        members = [
            EnsembleMember("a", montage(size=20, seed=1)),
            EnsembleMember("b", blast(size=15, seed=2)),
        ]
        runner = EnsembleRunner(
            presets.hybrid_cluster(nodes=2), RunConfig(seed=1)
        )
        online = runner.run(members, discipline="online")
        shared = runner.run(members, discipline="shared")
        assert online.makespan == pytest.approx(shared.makespan)
