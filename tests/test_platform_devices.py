"""Tests for device specs and live devices."""

import pytest

from repro.platform.devices import Device, DeviceClass, DeviceSpec, catalogue
from repro.platform.nodes import Node, NodeSpec


def make_device(spec=None):
    spec = spec or catalogue()["cpu-std"]
    node = Node(NodeSpec.of("n0", [spec]))
    return node.devices[0]


class TestDeviceSpec:
    def test_catalogue_entries_valid(self):
        cat = catalogue()
        assert {"cpu-std", "gpu-std", "fpga-std"} <= set(cat)
        for spec in cat.values():
            assert spec.speed > 0
            assert spec.slots >= 1

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", DeviceClass.CPU, speed=-1.0)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", DeviceClass.CPU, speed=1.0, slots=0)

    def test_nonpositive_memory_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("bad", DeviceClass.CPU, speed=1.0, memory_gb=0)

    def test_scaled_multiplies_speed(self):
        spec = catalogue()["cpu-std"]
        fast = spec.scaled(2.0, "cpu-2x")
        assert fast.speed == spec.speed * 2.0
        assert fast.name == "cpu-2x"
        assert fast.device_class == spec.device_class

    def test_scaled_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            catalogue()["cpu-std"].scaled(0.0)

    def test_device_class_str(self):
        assert str(DeviceClass.GPU) == "gpu"


class TestDevice:
    def test_uid_includes_node_and_index(self):
        d = make_device()
        assert d.uid == "n0:cpu-std#0"

    def test_duplicate_specs_get_distinct_indices(self):
        spec = catalogue()["cpu-std"]
        node = Node(NodeSpec.of("n0", [spec, spec]))
        uids = [d.uid for d in node.devices]
        assert len(set(uids)) == 2

    def test_earliest_slot_initially_zero(self):
        d = make_device()
        slot, t = d.earliest_slot()
        assert slot == 0
        assert t == 0.0

    def test_earliest_slot_respects_after(self):
        d = make_device()
        _slot, t = d.earliest_slot(after=5.0)
        assert t == 5.0

    def test_occupy_advances_slot(self):
        d = make_device()
        d.occupy(0, 1.0, 3.0)
        _slot, t = d.earliest_slot()
        assert t == 3.0
        assert d.tasks_run == 1

    def test_occupy_reversed_interval_rejected(self):
        d = make_device()
        with pytest.raises(ValueError):
            d.occupy(0, 3.0, 1.0)

    def test_occupy_bad_slot_rejected(self):
        d = make_device()
        with pytest.raises(IndexError):
            d.occupy(5, 0.0, 1.0)

    def test_busy_time_sums_intervals(self):
        d = make_device()
        d.occupy(0, 0.0, 2.0)
        d.occupy(0, 3.0, 4.0)
        assert d.busy_time() == pytest.approx(3.0)

    def test_busy_time_clips_at_until(self):
        d = make_device()
        d.occupy(0, 0.0, 10.0)
        assert d.busy_time(until=4.0) == pytest.approx(4.0)

    def test_utilization(self):
        d = make_device()
        d.occupy(0, 0.0, 5.0)
        assert d.utilization(10.0) == pytest.approx(0.5)
        assert d.utilization(0.0) == 0.0

    def test_reset_clears_everything(self):
        d = make_device()
        d.occupy(0, 0.0, 2.0)
        d.failed = True
        d.reset()
        assert d.busy_time() == 0.0
        assert not d.failed
        assert d.tasks_run == 0

    def test_multi_slot_earliest_picks_free_slot(self):
        spec = DeviceSpec("multi", DeviceClass.CPU, speed=10.0, slots=2)
        node = Node(NodeSpec.of("n0", [spec]))
        d = node.devices[0]
        d.occupy(0, 0.0, 10.0)
        slot, t = d.earliest_slot()
        assert slot == 1
        assert t == 0.0
