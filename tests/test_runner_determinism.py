"""Campaign determinism: --jobs N == --jobs 1 == warm cache, exactly.

Three representative experiments cover the cell shapes the runner must
keep deterministic: T1 (plain suite×scheduler grid), F5 (fault injection
with recovery-policy factory specs and repetitions), X2 (module-level
cluster factory behind exotic fabrics).  Each is rendered under a serial
runner, a 4-worker pool, and a warm-cache rerun; the rendered strings —
every number the experiment reports — must match byte for byte.
"""

from __future__ import annotations

import pytest

from repro.experiments import f5_faults, t1_schedulers, x2_topology
from repro.runner import CampaignRunner, ResultCache, use_runner

CASES = [
    ("t1", t1_schedulers.run),
    ("f5", f5_faults.run),
    ("x2", x2_topology.run),
]


def _render(run, runner):
    with use_runner(runner):
        return run(quick=True, seed=0).render()


@pytest.mark.parametrize("exp_id,run", CASES, ids=[c[0] for c in CASES])
def test_jobs4_equals_jobs1_equals_warm_cache(exp_id, run, tmp_path):
    """Parallel fan-out and cache recall never change a single digit."""
    serial = _render(run, CampaignRunner(jobs=1))

    cold_cache = ResultCache(str(tmp_path / "cache"))
    parallel = _render(run, CampaignRunner(jobs=4, cache=cold_cache))
    assert parallel == serial, (
        f"{exp_id}: --jobs 4 diverged from --jobs 1"
    )

    warm_runner = CampaignRunner(jobs=4, cache=ResultCache(str(tmp_path / "cache")))
    warm = _render(run, warm_runner)
    assert warm == serial, f"{exp_id}: warm-cache rerun diverged"
    assert warm_runner.simulated == 0, (
        f"{exp_id}: warm rerun re-simulated {warm_runner.simulated} cells"
    )


def test_repeat_serial_runs_are_reproducible():
    """Two serial runs of the same experiment are identical (baseline)."""
    assert _render(t1_schedulers.run, CampaignRunner(jobs=1)) == _render(
        t1_schedulers.run, CampaignRunner(jobs=1)
    )
