"""Interprocedural determinism-taint tests.

Mutation style, like the lint suite: seed a sink N calls away from a
root and the root must be flagged with the full chain; remove the sink
(or allowlist it at site granularity) and the flow pass must go quiet.
The tree-level test is the CI gate's contract: the shipped campaign
entry points are taint-free under the shipped allowlist.
"""

import os
import textwrap

from repro.staticcheck.callgraph import build_callgraph
from repro.staticcheck.flow import (
    check_flow,
    default_roots,
    function_sinks,
    propagate_taint,
)
from repro.staticcheck.lint import DEFAULT_ALLOWLIST, load_allowlist


def graph_for(tmp_path, files):
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(str(path))
    return build_callgraph(paths)


class TestTaintPropagation:
    def test_transitive_sink_taints_root(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            import time
            def leaf():
                return time.time()
            def mid():
                return leaf()
            def entry():
                return mid()
        """})
        findings = check_flow(g, roots=["m.entry"])
        assert [f.check for f in findings] == ["taint-flow"]
        msg = findings[0].message
        assert "wall-clock" in msg
        # The chain names every hop down to the sink site.
        assert "entry" in msg and "mid" in msg and "leaf" in msg

    def test_clean_chain_is_clean(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            import time
            def leaf():
                return time.perf_counter()
            def entry():
                return leaf()
        """})
        assert check_flow(g, roots=["m.entry"]) == []

    def test_one_finding_per_check_id(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            import time, os
            def clocky():
                return time.time()
            def entropic():
                return os.urandom(8)
            def entry():
                clocky()
                entropic()
                clocky()
        """})
        findings = check_flow(g, roots=["m.entry"])
        assert sorted(
            f.message.split(" sink", 1)[0].rsplit(" ", 1)[-1]
            for f in findings
        ) == ["ambient-entropy", "wall-clock"]

    def test_allowlisted_sink_seeds_no_taint(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            import time
            def shim():
                return time.time()
            def entry():
                return shim()
        """})
        used = set()
        allow = [("m.py", "wall-clock", "time.time")]
        assert check_flow(g, roots=["m.entry"], allow=allow, used=used) == []
        assert used  # the entry counted as live

    def test_cross_module_taint(self, tmp_path):
        g = graph_for(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/deep.py": """
                import random
                def draw():
                    return random.random()
            """,
            "pkg/entry.py": """
                from .deep import draw
                def run():
                    return draw()
            """,
        })
        findings = check_flow(g, roots=["pkg.entry.run"])
        assert len(findings) == 1
        assert "global-random" in findings[0].message

    def test_propagate_taint_fixpoint(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            import time
            def leaf():
                return time.time()
            def a():
                b()
            def b():
                a()
                leaf()
        """})
        taint = propagate_taint(g, function_sinks(g))
        # Mutual recursion converges; both carry the leaf's taint.
        assert taint["m.a"] == {"wall-clock"}
        assert taint["m.b"] == {"wall-clock"}


class TestRoots:
    def test_scheduler_entry_points_are_roots(self, tmp_path):
        import repro

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        roots = default_roots(g)
        assert "repro.runner.jobs.execute_sim" in roots
        assert "repro.runner.pool.CampaignRunner.run_batches" in roots
        assert any(r.startswith("repro.schedulers.heft.") for r in roots)
        # Roots restricted to methods: module-level helpers are not plans.
        assert all("." in r for r in roots)

    def test_missing_roots_are_skipped(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": "def f():\n    pass\n"})
        assert check_flow(g, roots=["not.there"]) == []
        assert default_roots(g) == []


class TestShippedTreeIsTaintFree:
    def test_campaign_entry_points_are_clean(self):
        import repro

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        allow = load_allowlist(DEFAULT_ALLOWLIST)
        findings = check_flow(g, allow=allow)
        assert findings == [], "\n".join(str(f) for f in findings)
