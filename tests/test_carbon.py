"""Tests for carbon-aware accounting and temporal shifting."""

import pytest

from repro.energy.accounting import EnergyReport, DeviceEnergy
from repro.energy.carbon import (
    CarbonIntensityTrace,
    best_start_hour,
    carbon_emissions,
    shifting_savings,
)


def report(joules: float = 3.6e6, makespan: float = 3600.0) -> EnergyReport:
    r = EnergyReport(makespan=makespan)
    r.devices["d"] = DeviceEnergy("d", makespan, 0.0, joules, 0.0)
    return r


class TestTrace:
    def test_flat_trace_constant(self):
        t = CarbonIntensityTrace.flat(400.0)
        assert t.intensity_at(0.0) == 400.0
        assert t.intensity_at(13.7) == 400.0
        assert t.intensity_at(30.0) == 400.0  # wraps

    def test_solar_dips_at_noon(self):
        t = CarbonIntensityTrace.synthetic_solar(noon=13.0)
        assert t.intensity_at(13.0) < t.intensity_at(3.0)
        assert t.intensity_at(13.0) < t.intensity_at(22.0)

    def test_interpolation_between_samples(self):
        t = CarbonIntensityTrace(((0.0, 100.0), (10.0, 200.0), (24.0, 100.0)))
        assert t.intensity_at(5.0) == pytest.approx(150.0)

    def test_invalid_traces_rejected(self):
        with pytest.raises(ValueError):
            CarbonIntensityTrace(((0.0, 100.0),))
        with pytest.raises(ValueError):
            CarbonIntensityTrace(((1.0, 100.0), (2.0, 100.0)))
        with pytest.raises(ValueError):
            CarbonIntensityTrace(((0.0, 100.0), (2.0, -1.0)))
        with pytest.raises(ValueError):
            CarbonIntensityTrace(((0.0, 1.0), (5.0, 2.0), (3.0, 1.0)))

    def test_mean_over_zero_duration(self):
        t = CarbonIntensityTrace.flat(300.0)
        assert t.mean_over(5.0, 0.0) == 300.0


class TestEmissions:
    def test_one_kwh_on_flat_grid(self):
        # 3.6e6 J = 1 kWh at 400 g/kWh -> 400 g
        g = carbon_emissions(report(), CarbonIntensityTrace.flat(400.0))
        assert g == pytest.approx(400.0)

    def test_emissions_depend_on_start_hour(self):
        t = CarbonIntensityTrace.synthetic_solar()
        night = carbon_emissions(report(), t, start_hour=2.0)
        noon = carbon_emissions(report(), t, start_hour=12.5)
        assert noon < night

    def test_best_start_hour_near_noon(self):
        t = CarbonIntensityTrace.synthetic_solar(noon=13.0)
        hour, _g = best_start_hour(report(), t)
        assert 10.0 <= hour <= 14.0

    def test_best_start_flat_grid_indifferent(self):
        t = CarbonIntensityTrace.flat(300.0)
        hour, g = best_start_hour(report(), t)
        assert g == pytest.approx(carbon_emissions(report(), t, 17.0))

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            best_start_hour(report(), CarbonIntensityTrace.flat(), 0.0)

    def test_shifting_savings_summary(self):
        t = CarbonIntensityTrace.synthetic_solar()
        s = shifting_savings(report(), t)
        assert 0.0 < s["savings_fraction"] < 1.0
        assert s["best_gco2"] <= s["worst_gco2"]

    def test_long_runs_average_out(self):
        """A 24 h run sees the whole curve; shifting buys almost nothing."""
        t = CarbonIntensityTrace.synthetic_solar()
        s = shifting_savings(report(makespan=24 * 3600.0), t)
        assert s["savings_fraction"] < 0.05

    def test_end_to_end_with_real_run(self):
        from repro import run_workflow
        from repro.platform import presets
        from repro.workflows.generators import montage

        result = run_workflow(
            montage(n_images=5, seed=1),
            presets.hybrid_cluster(nodes=2, cores_per_node=2),
            seed=1,
        )
        t = CarbonIntensityTrace.synthetic_solar()
        g = carbon_emissions(result.energy, t, start_hour=9.0)
        assert g > 0
