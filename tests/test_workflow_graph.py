"""Tests for the Workflow DAG container."""

import pytest

from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task, cpu_task


def diamond():
    """a -> (b, c) -> d, with distinct edge sizes."""
    wf = Workflow("diamond")
    wf.add_file(DataFile("in", 1.0, initial=True))
    wf.add_file(DataFile("ab", 10.0))
    wf.add_file(DataFile("ac", 20.0))
    wf.add_file(DataFile("bd", 5.0))
    wf.add_file(DataFile("cd", 5.0))
    wf.add_file(DataFile("out", 1.0))
    wf.add_task(cpu_task("a", 10.0, inputs=("in",), outputs=("ab", "ac")))
    wf.add_task(cpu_task("b", 20.0, inputs=("ab",), outputs=("bd",)))
    wf.add_task(cpu_task("c", 30.0, inputs=("ac",), outputs=("cd",)))
    wf.add_task(cpu_task("d", 40.0, inputs=("bd", "cd"), outputs=("out",)))
    return wf


class TestConstruction:
    def test_duplicate_task_rejected(self):
        wf = diamond()
        with pytest.raises(ValueError):
            wf.add_task(cpu_task("a", 1.0))

    def test_unknown_file_rejected(self):
        wf = Workflow("w")
        with pytest.raises(ValueError):
            wf.add_task(cpu_task("t", 1.0, inputs=("ghost",)))

    def test_double_producer_rejected(self):
        wf = Workflow("w")
        wf.add_file(DataFile("f", 1.0))
        wf.add_task(cpu_task("p1", 1.0, outputs=("f",)))
        with pytest.raises(ValueError):
            wf.add_task(cpu_task("p2", 1.0, outputs=("f",)))

    def test_producing_initial_file_rejected(self):
        wf = Workflow("w")
        wf.add_file(DataFile("f", 1.0, initial=True))
        with pytest.raises(ValueError):
            wf.add_task(cpu_task("p", 1.0, outputs=("f",)))

    def test_refiling_same_file_is_idempotent(self):
        wf = Workflow("w")
        f = DataFile("f", 1.0)
        wf.add_file(f)
        wf.add_file(DataFile("f", 1.0))  # identical: fine
        with pytest.raises(ValueError):
            wf.add_file(DataFile("f", 2.0))  # conflicting: rejected

    def test_control_edge_validation(self):
        wf = diamond()
        wf.add_control_edge("b", "c")
        with pytest.raises(KeyError):
            wf.add_control_edge("a", "ghost")
        with pytest.raises(ValueError):
            wf.add_control_edge("a", "a")


class TestDerivedStructure:
    def test_edges_follow_files(self):
        wf = diamond()
        assert wf.predecessors("d") == ["b", "c"]
        assert wf.successors("a") == ["b", "c"]
        assert wf.n_edges == 4

    def test_edge_data_sizes(self):
        wf = diamond()
        assert wf.edge_data_mb("a", "b") == 10.0
        assert wf.edge_data_mb("a", "c") == 20.0
        assert wf.edge_data_mb("a", "d") == 0.0

    def test_multi_file_edge_sums(self):
        wf = Workflow("w")
        wf.add_file(DataFile("f1", 3.0))
        wf.add_file(DataFile("f2", 4.0))
        wf.add_task(cpu_task("p", 1.0, outputs=("f1", "f2")))
        wf.add_task(cpu_task("c", 1.0, inputs=("f1", "f2")))
        assert wf.edge_data_mb("p", "c") == 7.0

    def test_control_edge_zero_bytes(self):
        wf = diamond()
        wf.add_control_edge("b", "c")
        assert wf.edge_data_mb("b", "c") == 0.0
        assert "b" in wf.predecessors("c")

    def test_entry_and_exit(self):
        wf = diamond()
        assert wf.entry_tasks() == ["a"]
        assert wf.exit_tasks() == ["d"]

    def test_topological_order_valid(self):
        wf = diamond()
        order = wf.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["d"]
        assert pos["a"] < pos["c"] < pos["d"]

    def test_levels(self):
        wf = diamond()
        assert wf.levels() == [["a"], ["b", "c"], ["d"]]

    def test_producer_and_consumers(self):
        wf = diamond()
        assert wf.producer_of("ab") == "a"
        assert wf.producer_of("in") is None
        assert wf.consumers_of("ab") == ["b"]

    def test_is_acyclic(self):
        assert diamond().is_acyclic()

    def test_cache_invalidated_on_mutation(self):
        wf = diamond()
        assert wf.n_edges == 4
        wf.add_file(DataFile("extra", 1.0))
        wf.add_task(cpu_task("e", 1.0, inputs=("out",), outputs=("extra",)))
        assert wf.n_edges == 5


class TestAggregates:
    def test_total_work(self):
        assert diamond().total_work() == 100.0

    def test_total_edge_data(self):
        assert diamond().total_edge_data_mb() == 40.0

    def test_critical_path_work(self):
        # a(10) -> c(30) -> d(40) = 80
        assert diamond().critical_path_work() == 80.0

    def test_ccr_scales_with_edge_data(self):
        wf = diamond()
        base = wf.ccr(reference_speed=50.0, reference_bandwidth=1250.0)
        assert base > 0
        # doubling bandwidth halves CCR
        assert wf.ccr(reference_bandwidth=2500.0) == pytest.approx(base / 2)

    def test_ccr_empty_workflow(self):
        assert Workflow("empty").ccr() == 0.0

    def test_categories(self):
        wf = diamond()
        assert wf.categories() == {"generic": 4}

    def test_initial_files(self):
        wf = diamond()
        assert [f.name for f in wf.initial_files()] == ["in"]

    def test_scaled_copies_structure(self):
        wf = diamond()
        big = wf.scaled(2.0)
        assert big.total_work() == 200.0
        assert big.n_edges == wf.n_edges
        assert big.tasks["a"].work == 20.0
        # original untouched
        assert wf.tasks["a"].work == 10.0

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            diamond().scaled(0.0)

    def test_scaled_preserves_control_edges(self):
        wf = diamond()
        wf.add_control_edge("b", "c")
        big = wf.scaled(2.0)
        assert "b" in big.predecessors("c")
