"""Call-graph substrate tests.

The whole-program passes are only as good as the edges underneath them,
so each resolution rule gets its own positive test, and the dynamic
constructs the graph deliberately refuses to resolve get negative ones
(under-approximation: no invented edges).  The tree-level test pins the
graph to the real package: the campaign roots must keep reaching the
worker internals, or the deep passes silently check nothing.
"""

import os
import textwrap

from repro.staticcheck.callgraph import (
    build_callgraph,
    local_nodes,
    module_name_for,
)


def make_tree(tmp_path, files):
    """Write ``{relpath: source}`` files and return their paths."""
    paths = []
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(str(path))
    return paths


def graph_for(tmp_path, files):
    return build_callgraph(make_tree(tmp_path, files))


class TestModuleNaming:
    def test_package_files_get_dotted_names(self, tmp_path):
        make_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sub/__init__.py": "",
            "pkg/sub/mod.py": "x = 1\n",
        })
        assert module_name_for(str(tmp_path / "pkg/sub/mod.py")) == "pkg.sub.mod"
        assert module_name_for(str(tmp_path / "pkg/sub/__init__.py")) == "pkg.sub"

    def test_bare_file_uses_stem(self, tmp_path):
        make_tree(tmp_path, {"solo.py": "x = 1\n"})
        assert module_name_for(str(tmp_path / "solo.py")) == "solo"


class TestLocalNodes:
    def test_nested_bodies_are_excluded(self):
        import ast

        tree = ast.parse(textwrap.dedent("""
            def outer():
                a = 1
                def inner():
                    b = 2
                return a
        """))
        outer = tree.body[0]
        names = [n.id for n in local_nodes(outer) if isinstance(n, ast.Name)]
        assert "a" in names and "b" not in names
        # The inner def statement itself is still visible.
        assert any(
            isinstance(n, ast.FunctionDef) and n.name == "inner"
            for n in local_nodes(outer)
        )


class TestEdgeResolution:
    def test_same_module_call(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def helper():
                pass
            def top():
                helper()
        """})
        assert "m.helper" in g.callees("m.top")

    def test_import_alias_call(self, tmp_path):
        g = graph_for(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": """
                def work():
                    pass
            """,
            "pkg/main.py": """
                from pkg.util import work
                def go():
                    work()
            """,
        })
        assert "pkg.util.work" in g.callees("pkg.main.go")

    def test_relative_import_call(self, tmp_path):
        g = graph_for(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/util.py": """
                def work():
                    pass
            """,
            "pkg/main.py": """
                from .util import work
                def go():
                    work()
            """,
        })
        assert "pkg.util.work" in g.callees("pkg.main.go")

    def test_self_method_resolves_through_bases(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class Base:
                def step(self):
                    pass
            class Child(Base):
                def run(self):
                    self.step()
        """})
        assert "m.Base.step" in g.callees("m.Child.run")

    def test_local_instance_method_call(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class Worker:
                def go(self):
                    pass
            def drive():
                w = Worker()
                w.go()
        """})
        assert "m.Worker.go" in g.callees("m.drive")

    def test_constructor_adds_init_edge(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            class Worker:
                def __init__(self):
                    pass
            def drive():
                Worker()
        """})
        assert "m.Worker.__init__" in g.callees("m.drive")

    def test_nested_def_call(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def outer():
                def inner():
                    pass
                inner()
        """})
        assert "m.outer.inner" in g.callees("m.outer")

    def test_unknown_receiver_makes_no_edge(self, tmp_path):
        # ``payload.get(...)`` must NOT resolve to some unrelated ``get``.
        g = graph_for(tmp_path, {"m.py": """
            def get():
                pass
            def use(payload):
                payload.get("k")
        """})
        assert g.callees("m.use") == []
        assert ("get", 5) in g.unresolved["m.use"]


class TestQueries:
    def test_reachable_is_transitive(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def c():
                pass
            def b():
                c()
            def a():
                b()
        """})
        assert g.reachable(["m.a"]) == {"m.a", "m.b", "m.c"}

    def test_call_chain_is_shortest(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def sink():
                pass
            def long1():
                long2()
            def long2():
                sink()
            def a():
                long1()
                sink()
        """})
        assert g.call_chain("m.a", {"m.sink"}) == ["m.a", "m.sink"]

    def test_generator_flag(self, tmp_path):
        g = graph_for(tmp_path, {"m.py": """
            def gen():
                yield 1
            def plain():
                return [x for x in (1, 2)]
        """})
        assert g.functions["m.gen"].is_generator
        assert not g.functions["m.plain"].is_generator


class TestRealTree:
    def test_campaign_roots_reach_worker_internals(self):
        import repro

        src = os.path.dirname(os.path.abspath(repro.__file__))
        g = build_callgraph([src])
        # The graph is substantive, not a stub.
        assert len(g.functions) > 300
        assert sum(len(v) for v in g.edges.values()) > 500
        reach = g.reachable(["repro.runner.pool.CampaignRunner.run_batches"])
        assert "repro.runner.jobs.execute_payload" in reach
        assert "repro.runner.jobs._workflow_for" in reach
