"""Tests for tasks and data files."""

import pytest

from repro.platform.devices import DeviceClass
from repro.workflows.task import (
    DataFile,
    Task,
    accelerable_task,
    cpu_task,
    gpu_task,
)


class TestDataFile:
    def test_basic(self):
        f = DataFile("x", 10.0)
        assert not f.initial
        assert f.location is None

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataFile("x", -1.0)

    def test_location_requires_initial(self):
        DataFile("ok", 1.0, initial=True, location="n0")
        with pytest.raises(ValueError):
            DataFile("bad", 1.0, initial=False, location="n0")

    def test_frozen(self):
        f = DataFile("x", 1.0)
        with pytest.raises(Exception):
            f.size_mb = 2.0


class TestTask:
    def test_defaults(self):
        t = Task("t", 10.0)
        assert t.category == "generic"
        assert t.inputs == ()

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Task("t", -1.0)

    def test_negative_memory_rejected(self):
        with pytest.raises(ValueError):
            Task("t", 1.0, memory_gb=-1.0)

    def test_negative_affinity_rejected(self):
        with pytest.raises(ValueError):
            Task("t", 1.0, affinity={DeviceClass.GPU: -2.0})

    def test_sequences_normalized_to_tuples(self):
        t = Task("t", 1.0, inputs=["a"], outputs=["b"])
        assert t.inputs == ("a",)
        assert t.outputs == ("b",)

    def test_affinity_for_cpu_defaults_to_one(self):
        t = Task("t", 1.0)
        assert t.affinity_for(DeviceClass.CPU) == 1.0
        assert t.affinity_for(DeviceClass.GPU) == 0.0

    def test_affinity_for_explicit_entries(self):
        t = Task("t", 1.0, affinity={DeviceClass.GPU: 5.0,
                                     DeviceClass.CPU: 0.5})
        assert t.affinity_for(DeviceClass.GPU) == 5.0
        assert t.affinity_for(DeviceClass.CPU) == 0.5

    def test_eligible_classes(self):
        t = gpu_task("t", 1.0)
        assert DeviceClass.CPU in t.eligible_classes()
        assert DeviceClass.GPU in t.eligible_classes()
        assert DeviceClass.FPGA not in t.eligible_classes()

    def test_accelerable_property(self):
        assert gpu_task("t", 1.0, gpu_speedup=2.0).accelerable
        assert not cpu_task("t", 1.0).accelerable
        # GPU eligible at parity is not "accelerable".
        t = Task("t", 1.0, affinity={DeviceClass.GPU: 1.0})
        assert not t.accelerable

    def test_with_work_preserves_everything_else(self):
        t = accelerable_task("t", 10.0, gpu=3.0, inputs=(), outputs=(),
                             category="stage", memory_gb=4.0)
        t2 = t.with_work(20.0)
        assert t2.work == 20.0
        assert t2.category == "stage"
        assert t2.affinity == t.affinity
        assert t2.memory_gb == 4.0

    def test_accelerable_task_constructor_drops_zeros(self):
        t = accelerable_task("t", 1.0, gpu=5.0, fpga=0.0, dsp=2.0)
        assert DeviceClass.FPGA not in t.affinity
        assert t.affinity[DeviceClass.DSP] == 2.0
