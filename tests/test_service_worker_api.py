"""Service worker end-to-end and the JSON API over a live server."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments.common import make_job, preset_spec
from repro.runner import CampaignRunner, ResultCache
from repro.runner.hashing import cache_key
from repro.service import JobStore
from repro.service.api import build_server
from repro.service.store import (
    CACHED,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
)
from repro.service.wire import submission_to_wire
from repro.service.worker import ServiceWorker
from repro.cli import validate_runner_args
from repro.workflows.generators import montage

CLUSTER = preset_spec("hybrid", nodes=2, cores_per_node=2, gpus_per_node=1)


def _jobs(n=6, seed=23, prefix="wsvc"):
    wf = montage(size=10, seed=seed)
    return [
        make_job(wf, CLUSTER, scheduler="heft", seed=seed + i, noise_cv=0.1,
                 label=f"{prefix}:{i}")
        for i in range(n)
    ]


def _failing_job(seed=23, label="wsvc:poison"):
    """A cell that raises inside the worker (unknown RunConfig field)."""
    return make_job(
        montage(size=10, seed=seed), CLUSTER, scheduler="heft",
        seed=seed, bogus_config_field=1, label=label,
    )


def _worker(store, tmp_path, worker_id, cache="cache", **kwargs):
    runner = CampaignRunner(
        jobs=1, cache=ResultCache(str(tmp_path / cache)),
        failure_mode="record", max_retries=kwargs.pop("max_retries", 1),
    )
    return runner, ServiceWorker(store, runner, worker_id=worker_id, **kwargs)


# --------------------------------------------------------------------- #
# worker end-to-end                                                     #
# --------------------------------------------------------------------- #

def test_worker_drains_store_with_byte_identical_records(tmp_path):
    """Service execution is the inline campaign path, byte for byte."""
    jobs = _jobs(6)
    store = JobStore(str(tmp_path / "store.db"))
    cid = store.submit("e2e", jobs)
    runner, worker = _worker(store, tmp_path, "w1", batch=4, ttl=8)
    with runner:
        stats = worker.run(max_polls=40)
    assert stats.done == 6 and stats.halted is False
    assert store.drained()

    with CampaignRunner(jobs=1) as inline:
        reference = inline.run_sims(_jobs(6))
    for job, record in zip(jobs, reference):
        stored = store.cell(cid, cache_key(job))["result"]
        assert (
            json.dumps(stored, sort_keys=True)
            == json.dumps(record.to_dict(), sort_keys=True)
        )
    store.close()


def test_resubmission_resolves_from_the_shared_cache(tmp_path):
    jobs = _jobs(5)
    store = JobStore(str(tmp_path / "store.db"))
    store.submit("first", jobs)
    runner, worker = _worker(store, tmp_path, "w1")
    with runner:
        worker.run(max_polls=40)

    cid2 = store.submit("again", jobs)
    runner2, worker2 = _worker(store, tmp_path, "w2")
    with runner2:
        stats2 = worker2.run(max_polls=40)
    assert stats2.cached == 5 and stats2.done == 0
    assert store.counts(cid2)[CACHED] == 5
    assert runner2.cache.stats.hits >= 5  # the shared-cache payoff
    store.close()


def test_two_workers_share_one_store_without_overlap(tmp_path):
    """The e2e two-worker test: separate connections, disjoint work."""
    path = str(tmp_path / "store.db")
    seed_store = JobStore(path)
    cid = seed_store.submit("pair", _jobs(10))
    seed_store.close()

    stats_by_worker = {}
    errors = []

    def drive(worker_id: str) -> None:
        store = JobStore(path)
        runner, worker = _worker(
            store, tmp_path, worker_id, batch=2, ttl=30,
        )
        try:
            with runner:
                stats_by_worker[worker_id] = worker.run(max_polls=200)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            store.close()

    threads = [
        threading.Thread(target=drive, args=(f"w{i}",)) for i in (1, 2)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []

    check = JobStore(path)
    counts = check.counts(cid)
    assert counts[DONE] + counts[CACHED] == 10
    assert check.drained()
    finished = sum(
        s.done + s.cached for s in stats_by_worker.values()
    )
    assert finished == 10  # each cell finished by exactly one worker
    check.close()


def test_dead_workers_cells_are_recovered_by_a_live_worker(tmp_path):
    """A lease that stops heartbeating is reclaimed and re-executed."""
    store = JobStore(str(tmp_path / "store.db"))
    cid = store.submit("recover", _jobs(4))
    # the "dead" worker: leases two cells, then never comes back
    dead = store.lease("w-dead", 2, ttl=3)
    store.mark_running(dead.token)

    runner, worker = _worker(store, tmp_path, "w-live", batch=4, ttl=8)
    with runner:
        stats = worker.run(max_polls=60)
    assert store.drained()
    assert stats.reclaimed == 2  # the live worker's polls reclaimed them
    assert store.counts(cid)[DONE] == 4
    for cell in store.cells(cid):
        assert cell["state"] == DONE
    store.close()


def test_failure_states_split_failed_from_quarantined(tmp_path, monkeypatch):
    """First-attempt permanent failures land `failed`; retried ones
    that exhaust their rounds land `quarantined` — PR 7's classification
    surfaced as store states."""
    store = JobStore(str(tmp_path / "store.db"))
    cid = store.submit("verdicts", [_failing_job()] + _jobs(2))
    runner, worker = _worker(store, tmp_path, "w1", max_retries=1)
    with runner:
        stats = worker.run(max_polls=40)
    assert stats.failed == 1 and stats.done == 2
    failed = store.cells(cid, state=FAILED, with_result=True)
    assert len(failed) == 1
    assert failed[0]["result"]["kind"].startswith("repro.cell-failure/")
    store.close()

    # retryable (transient) failures that exhaust the retry budget
    # → quarantined, the retry loop's give-up verdict
    store2 = JobStore(str(tmp_path / "store2.db"))
    cid2 = store2.submit("transient", _jobs(2, seed=31, prefix="tq"))
    monkeypatch.setenv(
        "REPRO_FAIL_INJECT", json.dumps({"rate": 1.0, "seed": 3})
    )
    runner2, worker2 = _worker(
        store2, tmp_path, "w2", cache="cache2", max_retries=0,
    )
    with runner2:
        stats2 = worker2.run(max_polls=40)
    assert stats2.quarantined == 2
    counts = store2.counts(cid2)
    assert counts[QUARANTINED] == 2
    store2.close()


def test_worker_rejects_raise_mode_runners(tmp_path):
    store = JobStore(str(tmp_path / "store.db"))
    with pytest.raises(ValueError, match="record"):
        ServiceWorker(store, CampaignRunner(jobs=1, failure_mode="raise"))
    store.close()


# --------------------------------------------------------------------- #
# the JSON API                                                          #
# --------------------------------------------------------------------- #

@pytest.fixture()
def served(tmp_path):
    store = JobStore(str(tmp_path / "store.db"))
    server = build_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield store, server.server_address[1]
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)
    store.close()


def _call(port, path, body=None):
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def test_api_submit_query_and_errors(served, tmp_path):
    store, port = served
    status, body = _call(port, "/api/ping")
    assert status == 200 and body["ok"] is True

    jobs = _jobs(3)
    status, body = _call(
        port, "/api/campaigns", submission_to_wire("api", jobs)
    )
    assert status == 200
    cid = body["campaign"]["id"]
    assert body["campaign"]["counts"][QUEUED] == 3

    status, body = _call(port, "/api/campaigns")
    assert status == 200 and [c["id"] for c in body["campaigns"]] == [cid]

    status, body = _call(port, f"/api/campaigns/{cid}/cells?state=queued")
    assert status == 200 and len(body["cells"]) == 3
    key = body["cells"][0]["key"]
    status, body = _call(port, f"/api/campaigns/{cid}/cells/{key}")
    assert status == 200 and body["cell"]["key"] == key

    # the error contract: structured JSON, never a traceback page
    assert _call(port, "/api/campaigns/nope")[0] == 404
    assert _call(port, f"/api/campaigns/{cid}/cells/nope")[0] == 404
    assert _call(port, "/api/nope")[0] == 404
    status, body = _call(port, "/api/campaigns", {"schema": "wrong"})
    assert status == 400 and "schema" in body["error"]

    status, body = _call(port, "/api/metrics")
    assert status == 200 and body["counts"][QUEUED] == 3
    status, body = _call(port, "/api/store")
    assert status == 200 and len(body["dump"]["cells"]) == 3


def test_api_campaign_completes_via_worker(served, tmp_path):
    store, port = served
    jobs = _jobs(4, seed=29, prefix="api-run")
    _call(port, "/api/campaigns", submission_to_wire("run", jobs))
    runner, worker = _worker(store, tmp_path, "w1")
    with runner:
        worker.run(max_polls=40)
    status, body = _call(port, "/api/campaigns")
    campaign = body["campaigns"][0]
    assert campaign["done"] is True and campaign["counts"][DONE] == 4
    cell_key = cache_key(jobs[0])
    status, body = _call(
        port, f"/api/campaigns/{campaign['id']}/cells/{cell_key}"
    )
    result = body["cell"]["result"]
    assert "makespan" in result and "kind" not in result  # a SimRecord


def test_api_drain_refuses_submissions_then_stop_shuts_down(tmp_path):
    store = JobStore(str(tmp_path / "store.db"))
    server = build_server(store, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status, body = _call(port, "/api/drain", {})
        assert status == 200 and body["draining"] is True
        status, _ = _call(
            port, "/api/campaigns", submission_to_wire("late", _jobs(1))
        )
        assert status == 503
        status, body = _call(port, "/api/stop", {})
        assert status == 200 and body["stopping"] is True
        thread.join(timeout=5)
        assert not thread.is_alive()
    finally:
        server.server_close()
        store.close()


# --------------------------------------------------------------------- #
# up-front CLI flag validation (shared by campaign/exp/worker/serve)    #
# --------------------------------------------------------------------- #

class _Args:
    def __init__(self, **kw):
        self.__dict__.update(kw)


@pytest.mark.parametrize("kwargs,fragment", [
    (dict(command="campaign", resume=True, cache_dir=None), "cache-dir"),
    (dict(command="campaign", resume=True, cache_dir="c", no_cache=True),
     "cache-dir"),
    (dict(command="exp", no_cache=True, cache_dir=None), "no-cache"),
    (dict(command="worker", cache_dir=None), "cache-dir"),
])
def test_validate_runner_args_rejects_bad_combinations(kwargs, fragment):
    problem = validate_runner_args(_Args(**kwargs))
    assert problem is not None and fragment in problem


@pytest.mark.parametrize("kwargs", [
    dict(command="campaign", resume=True, cache_dir="c"),
    dict(command="campaign"),
    dict(command="worker", cache_dir="c", store="s.db"),
    dict(command="serve", store="s.db"),
    dict(command="run"),
])
def test_validate_runner_args_accepts_good_combinations(kwargs):
    assert validate_runner_args(_Args(**kwargs)) is None
