"""Tests for fault models, injection and recovery policies."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import DeviceFault, FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.sim.rng import RngStreams


class TestFaultModel:
    def test_disabled_by_default(self):
        fm = FaultModel()
        assert not fm.enabled
        assert fm.draw_task_failure(np.random.default_rng(0), 100.0) is None

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(task_fault_rate=-1.0)

    def test_bad_mtbf_rejected(self):
        with pytest.raises(ValueError):
            FaultModel(device_mtbf=0.0)

    def test_task_failure_within_duration(self):
        fm = FaultModel(task_fault_rate=10.0)
        rng = np.random.default_rng(1)
        for _ in range(100):
            t = fm.draw_task_failure(rng, 5.0)
            if t is not None:
                assert 0 <= t < 5.0

    def test_high_rate_fails_often(self):
        fm = FaultModel(task_fault_rate=100.0)
        rng = np.random.default_rng(2)
        fails = sum(
            fm.draw_task_failure(rng, 1.0) is not None for _ in range(200)
        )
        assert fails > 180

    def test_zero_duration_never_fails(self):
        fm = FaultModel(task_fault_rate=100.0)
        assert fm.draw_task_failure(np.random.default_rng(0), 0.0) is None

    def test_device_failures_capped(self):
        fm = FaultModel(device_mtbf=1.0)
        rng = np.random.default_rng(3)
        faults = fm.draw_device_failures(
            rng, [f"d{i}" for i in range(10)], horizon=100.0, max_failures=3
        )
        assert len(faults) == 3
        # sorted by time
        times = [f.time for f in faults]
        assert times == sorted(times)

    def test_device_failures_none_without_mtbf(self):
        fm = FaultModel()
        assert fm.draw_device_failures(np.random.default_rng(0), ["d"], 10.0) == []

    def test_at_most_one_failure_per_device(self):
        fm = FaultModel(device_mtbf=0.1)
        rng = np.random.default_rng(4)
        faults = fm.draw_device_failures(rng, ["a", "b"], horizon=1000.0)
        assert len(faults) <= 2
        assert len({f.device_uid for f in faults}) == len(faults)


class TestInjector:
    def test_deterministic_sequences(self):
        fm = FaultModel(task_fault_rate=1.0, device_mtbf=10.0)
        i1 = FaultInjector(fm, RngStreams(7))
        i2 = FaultInjector(fm, RngStreams(7))
        seq1 = [i1.task_failure_at(2.0) for _ in range(20)]
        seq2 = [i2.task_failure_at(2.0) for _ in range(20)]
        assert seq1 == seq2
        assert i1.plan_device_failures(["a", "b"], 100.0) == \
            i2.plan_device_failures(["a", "b"], 100.0)

    def test_counters(self):
        fm = FaultModel(task_fault_rate=100.0)
        inj = FaultInjector(fm, RngStreams(0))
        for _ in range(10):
            inj.task_failure_at(10.0)
        assert inj.task_faults_injected > 0


class TestRecoveryPolicy:
    def test_defaults_valid(self):
        p = RecoveryPolicy()
        assert not p.checkpointing
        assert p.effective_duration(10.0) == 10.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(checkpoint_interval_s=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(checkpoint_overhead=1.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(replicate_tasks=0)

    def test_checkpoint_overhead_applied(self):
        p = RecoveryPolicy.checkpoint(1.0, overhead=0.10)
        assert p.effective_duration(10.0) == pytest.approx(11.0)

    def test_lost_work_without_checkpoint(self):
        p = RecoveryPolicy.retry(3)
        assert p.lost_work(7.3) == 7.3

    def test_lost_work_with_checkpoint(self):
        p = RecoveryPolicy.checkpoint(2.0)
        assert p.lost_work(7.3) == pytest.approx(1.3)
        assert p.lost_work(4.0) == pytest.approx(0.0)

    def test_lost_work_negative_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy().lost_work(-1.0)

    def test_constructors(self):
        assert RecoveryPolicy.none().max_retries == 0
        assert RecoveryPolicy.retry(5).max_retries == 5
        assert RecoveryPolicy.replicated(3).replicate_tasks == 3
        ck = RecoveryPolicy.checkpoint(2.5)
        assert ck.checkpointing
        assert ck.checkpoint_interval_s == 2.5
