"""Tests for the adaptive (re-planning) policy."""

import pytest

from repro.core.adaptive import AdaptivePolicy
from repro.core.executor import WorkflowExecutor
from repro.core.hdws import HdwsScheduler
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform import presets
from repro.workflows.generators import montage


@pytest.fixture
def wf():
    return montage(n_images=8, seed=6)


@pytest.fixture
def cluster():
    return presets.hybrid_cluster(nodes=2, cores_per_node=2)


class TestAdaptivePolicy:
    def test_completes_without_noise(self, wf, cluster):
        cluster.reset()
        executor = WorkflowExecutor(wf, cluster, AdaptivePolicy())
        result = executor.run()
        assert result.success

    def test_no_replans_when_execution_matches_plan(self, wf, cluster):
        cluster.reset()
        policy = AdaptivePolicy(drift_threshold=0.5)
        executor = WorkflowExecutor(wf, cluster, policy)
        executor.run()
        assert policy.replans == 0

    def test_replans_triggered_by_noise(self, wf, cluster):
        cluster.reset()
        cluster.execution_model.noise_cv = 1.0
        try:
            policy = AdaptivePolicy(drift_threshold=0.02)
            executor = WorkflowExecutor(wf, cluster, policy, seed=3)
            result = executor.run()
            assert result.success
            assert policy.replans > 0
        finally:
            cluster.execution_model.noise_cv = 0.0

    def test_replans_on_device_failure(self, wf, cluster):
        cluster.reset()
        policy = AdaptivePolicy(drift_threshold=10.0)  # drift never triggers
        executor = WorkflowExecutor(
            wf, cluster, policy, seed=4,
            fault_model=FaultModel(device_mtbf=3.0),
            recovery=RecoveryPolicy.retry(20),
        )
        result = executor.run()
        assert result.success
        if result.device_faults > 0:
            assert policy.replans > 0

    def test_max_replans_respected(self, wf, cluster):
        cluster.reset()
        cluster.execution_model.noise_cv = 1.5
        try:
            policy = AdaptivePolicy(drift_threshold=0.001, max_replans=2)
            executor = WorkflowExecutor(wf, cluster, policy, seed=3)
            executor.run()
            assert policy.replans <= 2
        finally:
            cluster.execution_model.noise_cv = 0.0

    def test_custom_planner_accepted(self, wf, cluster):
        cluster.reset()
        policy = AdaptivePolicy(planner=HdwsScheduler(use_lookahead=False))
        executor = WorkflowExecutor(wf, cluster, policy)
        assert executor.run().success
