"""Fault-tolerant campaigns: capture, retry, quarantine, admission."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import make_job, preset_spec
from repro.observe import clear_events, recent_events
from repro.runner import (
    CampaignCellError,
    CampaignHaltedError,
    CampaignRunner,
    CellFailure,
    ResultCache,
)
from repro.runner.health import INFRASTRUCTURE, OutcomeView, TRANSIENT
from repro.workflows.generators import montage

CLUSTER = preset_spec("hybrid", nodes=2, cores_per_node=2, gpus_per_node=1)


def _jobs(n=6, seed=5, prefix="fault"):
    wf = montage(size=12, seed=seed)
    return [
        make_job(wf, CLUSTER, scheduler="heft", seed=seed + i, noise_cv=0.1,
                 label=f"{prefix}:{i}")
        for i in range(n)
    ]


def _failing_job(seed=5, label="fault:poison"):
    """A cell that raises inside the worker (unknown RunConfig field)."""
    return make_job(
        montage(size=12, seed=seed), CLUSTER, scheduler="heft",
        seed=seed, bogus_config_field=1, label=label,
    )


def _inject(monkeypatch, rate=0.0, seed=1, poison=()):
    monkeypatch.setenv("REPRO_FAIL_INJECT", json.dumps(
        {"rate": rate, "seed": seed, "poison": list(poison)}
    ))


# --------------------------------------------------------------------- #
# transient retry                                                       #
# --------------------------------------------------------------------- #

def test_transient_failures_retry_to_byte_identical_records(monkeypatch):
    """Every cell fails its first attempt; the retried run matches clean."""
    jobs = _jobs()
    clean = CampaignRunner(jobs=1).run_sims(jobs)

    _inject(monkeypatch, rate=1.0)
    runner = CampaignRunner(jobs=1, max_retries=1, failure_mode="record")
    records = runner.run_sims(jobs)

    assert records == clean  # retries leave no trace in the records
    assert runner.retried == len(jobs)
    assert runner.simulated == len(jobs)
    assert runner.failed == 0 and not runner.quarantine


def test_transient_without_retries_is_quarantined(monkeypatch):
    _inject(monkeypatch, rate=1.0)
    runner = CampaignRunner(jobs=1, max_retries=0, failure_mode="record")
    outcomes = runner.run_sims(_jobs(n=2))
    assert all(isinstance(o, CellFailure) for o in outcomes)
    assert outcomes[0].category == TRANSIENT
    assert outcomes[0].attempts == 1
    assert runner.failed == 2 and runner.retried == 0


# --------------------------------------------------------------------- #
# poison cells / permanent failures                                     #
# --------------------------------------------------------------------- #

def test_poison_cell_quarantined_never_retried(monkeypatch):
    jobs = _jobs()
    _inject(monkeypatch, poison=[jobs[2].label])
    runner = CampaignRunner(jobs=1, max_retries=3, failure_mode="record")
    outcomes = runner.run_sims(jobs)

    failure = outcomes[2]
    assert isinstance(failure, CellFailure)
    assert failure.category == "permanent"
    assert failure.attempts == 1  # permanent failures never retry
    assert failure.label == jobs[2].label
    assert runner.failed == 1 and runner.retried == 0
    assert runner.simulated == len(jobs) - 1
    assert [o.ok for o in outcomes] == [True, True, False, True, True, True]
    assert runner.quarantine_report() == [failure.summary()]


def test_worker_failure_keeps_chained_traceback_text():
    """The formatted worker traceback survives the pickle boundary."""
    runner = CampaignRunner(jobs=1, failure_mode="record")
    (failure,) = runner.run_sims([_failing_job()])
    assert isinstance(failure, CellFailure)
    assert failure.error_type == "TypeError"
    assert "bogus_config_field" in failure.message
    assert "Traceback (most recent call last)" in failure.traceback
    assert "bogus_config_field" in failure.traceback


def test_attempt_count_crosses_the_pickle_boundary():
    from repro.runner.jobs import execute_sim

    payload = _failing_job().payload()
    payload["attempt"] = 3
    failure = CellFailure.from_dict(execute_sim(payload))
    assert failure.attempts == 3


# --------------------------------------------------------------------- #
# raise mode: the historic contract, pool reusable after                #
# --------------------------------------------------------------------- #

def test_raise_mode_raises_with_label_and_worker_traceback():
    runner = CampaignRunner(jobs=1)
    with pytest.raises(CampaignCellError, match="fault:poison") as err:
        runner.run_sims([_failing_job()])
    assert "--- worker traceback ---" in str(err.value)
    assert err.value.failure.error_type == "TypeError"


def test_pool_reusable_after_failing_batch():
    """A failing batch must not wedge the persistent pool (regression)."""
    jobs = _jobs()
    broken = list(jobs)
    broken[3] = _failing_job()
    clean = CampaignRunner(jobs=1).run_sims(jobs)
    with CampaignRunner(jobs=2) as runner:
        with pytest.raises(CampaignCellError):
            runner.run_sims(broken)
        assert runner.run_sims(jobs) == clean  # same runner, same pool


def test_abandoned_ordered_stream_leaves_runner_reusable():
    jobs = _jobs()
    clean = CampaignRunner(jobs=1).run_sims(jobs)
    with CampaignRunner(jobs=2) as runner:
        stream = runner.run_sims_ordered(jobs)
        next(stream)
        stream.close()  # abandon mid-batch
        assert runner.run_sims(jobs) == clean


# --------------------------------------------------------------------- #
# failure caching and resume                                            #
# --------------------------------------------------------------------- #

def test_cached_failures_recall_without_resimulating(tmp_path, monkeypatch):
    jobs = _jobs()
    _inject(monkeypatch, poison=[jobs[2].label])

    first = CampaignRunner(
        jobs=1, cache=ResultCache(str(tmp_path)), failure_mode="record"
    )
    first.run_sims(jobs)
    first.close()
    assert first.failed == 1

    recalled = CampaignRunner(
        jobs=1, cache=ResultCache(str(tmp_path)), failure_mode="record"
    )
    outcomes = recalled.run_sims(jobs)
    assert recalled.simulated == 0  # every verdict came from the cache
    assert recalled.failed == 0  # recalled quarantine is not re-counted
    assert isinstance(outcomes[2], CellFailure)
    assert recalled.cache.stats.failure_hits == 1
    assert len(recalled.quarantine) == 1


def test_retry_failed_reruns_quarantined_cells(tmp_path, monkeypatch):
    jobs = _jobs()
    _inject(monkeypatch, poison=[jobs[2].label])
    first = CampaignRunner(
        jobs=1, cache=ResultCache(str(tmp_path)), failure_mode="record"
    )
    first.run_sims(jobs)
    first.close()

    # The poison is gone now (spec cleared): --retry-failed re-runs the
    # quarantined cell instead of recalling its cached failure.
    monkeypatch.delenv("REPRO_FAIL_INJECT")
    retried = CampaignRunner(
        jobs=1, cache=ResultCache(str(tmp_path)),
        failure_mode="record", retry_failed=True,
    )
    outcomes = retried.run_sims(jobs)
    assert retried.simulated == 1  # only the quarantined cell re-ran
    assert all(o.ok for o in outcomes)


def test_raise_mode_never_caches_failures(tmp_path):
    runner = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    with pytest.raises(CampaignCellError):
        runner.run_sims([_failing_job()])
    runner.close()
    rerun = CampaignRunner(jobs=1, cache=ResultCache(str(tmp_path)))
    with pytest.raises(CampaignCellError):
        rerun.run_sims([_failing_job()])  # still a live failure, not a hit
    assert rerun.cache.stats.failure_hits == 0


# --------------------------------------------------------------------- #
# health-gated batch admission                                          #
# --------------------------------------------------------------------- #

def test_run_batches_emits_admission_gate_events():
    clear_events()
    try:
        batches = [_jobs(n=2, seed=5), _jobs(n=2, seed=50, prefix="fault2")]
        with CampaignRunner(jobs=1) as runner:
            outcomes = list(runner.run_batches(batches, runway=2))
        assert len(outcomes) == 4
        admissions = [
            e for e in recent_events("campaign.gate")
            if e["context"] == "admission"
        ]
        assert admissions and all(e["action"] == "admit" for e in admissions)
    finally:
        clear_events()


def test_run_batches_halts_when_blocked():
    runner = CampaignRunner(jobs=1, failure_mode="record")
    runner.health.observe(OutcomeView(
        ok=False, category=INFRASTRUCTURE, error_type="OSError",
    ))
    with pytest.raises(CampaignHaltedError, match="blocked"):
        list(runner.run_batches([_jobs(n=2)]))
    assert runner.simulated == 0  # nothing was admitted


def test_run_batches_ignore_cannot_override_blocked():
    runner = CampaignRunner(jobs=1, failure_mode="record",
                            on_unhealthy="ignore")
    runner.health.observe(OutcomeView(
        ok=False, category=INFRASTRUCTURE, error_type="OSError",
    ))
    with pytest.raises(CampaignHaltedError):
        list(runner.run_batches([_jobs(n=2)]))


# --------------------------------------------------------------------- #
# CLI wiring                                                            #
# --------------------------------------------------------------------- #

def test_cli_fault_flags_reach_the_runner():
    from repro.cli import _campaign_runner, build_parser

    args = build_parser().parse_args([
        "exp", "x2", "--max-retries", "2", "--on-unhealthy", "halt",
        "--retry-failed",
    ])
    runner = _campaign_runner(args)
    try:
        assert runner.max_retries == 2
        assert runner.health.on_unhealthy == "halt"
        assert runner.retry_failed is True
    finally:
        runner.close()


def test_inject_spec_env_parse_errors_are_actionable(monkeypatch):
    from repro.runner import inject_spec_from_env

    monkeypatch.setenv("REPRO_FAIL_INJECT", "not json")
    with pytest.raises(ValueError, match="REPRO_FAIL_INJECT"):
        inject_spec_from_env()
    monkeypatch.setenv("REPRO_FAIL_INJECT", '{"rate": 0.5, "poison": ["x"]}')
    assert inject_spec_from_env() == {
        "rate": 0.5, "seed": 0, "poison": ["x"],
    }
