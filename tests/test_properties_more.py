"""Additional property-based tests for platform and energy substrates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.carbon import CarbonIntensityTrace
from repro.platform.cluster import Cluster
from repro.platform.devices import catalogue
from repro.platform.interconnect import Link
from repro.platform.nodes import NodeSpec


def two_node_cluster():
    cat = catalogue()
    return Cluster("p", [
        NodeSpec.of("a", [cat["cpu-std"]]),
        NodeSpec.of("b", [cat["cpu-std"]]),
    ])


@given(st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=100.0),
              st.floats(min_value=0.01, max_value=500.0)),
    min_size=1, max_size=30,
))
def test_link_reservations_never_overlap(requests):
    link = Link("a", "b", bandwidth=100.0, latency=0.01)
    intervals = []
    for earliest, size in requests:
        start, end = link.reserve(earliest, size)
        assert start >= earliest
        assert end > start
        intervals.append((start, end))
    intervals.sort()
    for (s0, e0), (s1, _e1) in zip(intervals, intervals[1:]):
        assert e0 <= s1 + 1e-9


@given(st.lists(
    st.tuples(st.sampled_from(["a", "b"]),
              st.floats(min_value=0.0, max_value=50.0),
              st.floats(min_value=0.01, max_value=1000.0)),
    min_size=1, max_size=25,
))
def test_staging_serializes_and_accounts(requests):
    cluster = two_node_cluster()
    total = 0.0
    frontier = 0.0
    for node, earliest, size in requests:
        start, end = cluster.reserve_staging(node, earliest, size)
        assert start >= frontier - 1e-9  # storage serves one stream at a time
        frontier = end
        total += size
    assert cluster.storage_bytes_served_mb == pytest.approx(total)


@given(st.floats(min_value=0.0, max_value=48.0))
def test_carbon_interpolation_within_sample_bounds(hour):
    trace = CarbonIntensityTrace.synthetic_solar()
    values = [v for _h, v in trace.samples]
    x = trace.intensity_at(hour)
    assert min(values) - 1e-9 <= x <= max(values) + 1e-9


@given(st.floats(min_value=10.0, max_value=5000.0),
       st.floats(min_value=10.0, max_value=5000.0))
def test_transfer_estimate_monotone_in_size(size_a, size_b):
    cluster = two_node_cluster()
    small, large = sorted((size_a, size_b))
    assert cluster.transfer_estimate("a", "b", small) <= cluster.transfer_estimate(
        "a", "b", large
    ) + 1e-12


@given(st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=40))
@settings(max_examples=15, deadline=None)
def test_ensemble_merge_task_counts(n_members, seed):
    from repro.workflows.ensemble import merge_workflows
    from repro.workflows.generators import montage

    members = {
        f"m{i}": montage(n_images=3 + i, seed=seed + i)
        for i in range(n_members)
    }
    merged = merge_workflows(members)
    assert merged.n_tasks == sum(w.n_tasks for w in members.values())
    assert merged.is_acyclic()
