"""Tests for device timelines and schedules."""

import pytest

from repro.schedulers.schedule import Assignment, DeviceTimeline, Schedule
from repro.workflows.generators import montage


class TestAssignment:
    def test_duration(self):
        a = Assignment("t", "d", 1.0, 3.5)
        assert a.duration == 2.5

    def test_reversed_rejected(self):
        with pytest.raises(ValueError):
            Assignment("t", "d", 3.0, 1.0)


class TestDeviceTimeline:
    def test_empty_free_at_zero(self):
        tl = DeviceTimeline("d")
        assert tl.free_at() == 0.0
        assert tl.earliest_fit(2.0, 1.0) == 2.0

    def test_add_and_free_at(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 2.0, "a")
        assert tl.free_at() == 2.0
        assert len(tl) == 1

    def test_overlap_rejected(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 2.0, "a")
        with pytest.raises(ValueError):
            tl.add(1.0, 3.0, "b")
        with pytest.raises(ValueError):
            tl.add(-1.0, 0.5, "c")

    def test_touching_intervals_allowed(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 2.0, "a")
        tl.add(2.0, 4.0, "b")
        assert len(tl) == 2

    def test_insertion_finds_gap(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 1.0, "a")
        tl.add(5.0, 6.0, "b")
        assert tl.earliest_fit(0.0, 2.0) == 1.0  # fits in [1, 5)

    def test_insertion_respects_ready_time(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 1.0, "a")
        tl.add(5.0, 6.0, "b")
        assert tl.earliest_fit(3.5, 1.0) == 3.5

    def test_insertion_before_first_interval(self):
        tl = DeviceTimeline("d")
        tl.add(5.0, 6.0, "a")
        assert tl.earliest_fit(0.0, 2.0) == 0.0

    def test_gap_too_small_falls_to_tail(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 1.0, "a")
        tl.add(2.0, 3.0, "b")
        assert tl.earliest_fit(0.0, 5.0) == 3.0

    def test_no_insertion_mode(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 1.0, "a")
        tl.add(5.0, 6.0, "b")
        assert tl.earliest_fit(0.0, 1.0, allow_insertion=False) == 6.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            DeviceTimeline("d").earliest_fit(0.0, -1.0)

    def test_busy_time(self):
        tl = DeviceTimeline("d")
        tl.add(0.0, 2.0, "a")
        tl.add(4.0, 5.0, "b")
        assert tl.busy_time() == 3.0

    def test_out_of_order_adds_kept_sorted(self):
        tl = DeviceTimeline("d")
        tl.add(5.0, 6.0, "b")
        tl.add(0.0, 1.0, "a")
        assert [t for _s, _e, t in tl.intervals] == ["a", "b"]


class TestSchedule:
    def test_add_and_lookup(self):
        s = Schedule()
        s.add("t1", "d1", 0.0, 2.0)
        assert s.device_of("t1") == "d1"
        assert s.finish_of("t1") == 2.0
        assert s.makespan == 2.0
        assert s.n_tasks == 1

    def test_duplicate_task_rejected(self):
        s = Schedule()
        s.add("t1", "d1", 0.0, 2.0)
        with pytest.raises(ValueError):
            s.add("t1", "d2", 3.0, 4.0)

    def test_empty_makespan_zero(self):
        assert Schedule().makespan == 0.0

    def test_tasks_on_in_start_order(self):
        s = Schedule()
        s.add("late", "d", 5.0, 6.0)
        s.add("early", "d", 0.0, 1.0)
        assert s.tasks_on("d") == ["early", "late"]
        assert s.tasks_on("other") == []

    def test_devices_used(self):
        s = Schedule()
        s.add("a", "d1", 0.0, 1.0)
        assert s.devices_used() == ["d1"]

    def test_validate_against_missing_task(self):
        wf = montage(n_images=3, seed=0)
        s = Schedule()
        with pytest.raises(ValueError, match="misses"):
            s.validate_against(wf)

    def test_validate_against_unknown_task(self):
        wf = montage(n_images=3, seed=0)
        s = Schedule()
        for i, name in enumerate(wf.topological_order()):
            s.add(name, "d", float(i), float(i) + 0.5)
        s2 = Schedule()
        s2.add("ghost", "d", 0.0, 1.0)
        for i, name in enumerate(wf.topological_order()):
            s2.add(name, "d2", float(i), float(i) + 0.5)
        with pytest.raises(ValueError, match="unknown"):
            s2.validate_against(wf)

    def test_validate_against_precedence_violation(self):
        wf = montage(n_images=3, seed=0)
        order = wf.topological_order()
        s = Schedule()
        # schedule the SECOND task before the first finishes
        s.add(order[0], "d", 0.0, 10.0)
        child = wf.successors(order[0])[0]
        s.add(child, "d2", 0.0, 1.0)
        for name in order:
            if name not in s.assignments:
                s.add(name, "d3", 100.0 + len(s.assignments),
                      100.5 + len(s.assignments))
        with pytest.raises(ValueError, match="precedence"):
            s.validate_against(wf)

    def test_summary_mentions_counts(self):
        s = Schedule()
        s.add("a", "d1", 0.0, 1.0)
        assert "1 tasks" in s.summary()
