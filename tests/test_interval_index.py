"""Property tests: ``IntervalIndex`` vs linear-sweep reference models.

The bisect-backed :class:`repro.sim.intervals.IntervalIndex` replaced the
executor's linear busy-interval sweeps.  These tests drive it with
thousands of seeded-random interval sets — including float-exact touching
endpoints, the case the ``OVERLAP_TOL`` epsilon exists for — and compare
every query against a brutally simple linear model kept inline here.

If ``hypothesis`` is installed (it is a dev extra, not a CI requirement)
an extra fuzzing pass runs; otherwise that one test skips and the seeded
``random.Random`` sweeps still provide the coverage floor.
"""

import random

import pytest

from repro.sim.intervals import (
    OVERLAP_TOL,
    IntervalError,
    IntervalIndex,
    max_overlap,
)


# --------------------------------------------------------------------- #
# linear reference models                                               #
# --------------------------------------------------------------------- #


def linear_earliest_fit(intervals, ready, duration, allow_insertion=True):
    """First-fit over a sorted busy list by linear sweep."""
    ivs = sorted(intervals)
    last_end = ivs[-1][1] if ivs else 0.0
    if not allow_insertion or not ivs:
        return max(ready, last_end)
    if ready + duration <= ivs[0][0]:
        return ready
    for (s0, e0, _), (s1, _, _) in zip(ivs, ivs[1:]):
        gap_start = max(ready, e0)
        if gap_start + duration <= s1:
            return gap_start
    return max(ready, last_end)


def linear_overlapping(intervals, start, end):
    """All intervals strictly overlapping [start, end)."""
    return sorted(
        (s, e, t) for s, e, t in intervals if e > start and s < end
    )


def linear_max_overlap(intervals):
    """Quadratic count of maximum concurrency, ignoring zero-length.

    Concurrency is half-open ([s, e)), so it peaks at some interval's
    start point — probe each one and count who covers it.
    """
    best = 0
    for s, e in intervals:
        if e <= s:
            continue
        count = sum(
            1 for s2, e2 in intervals if e2 > s2 and s2 <= s < e2
        )
        best = max(best, count)
    return best


def random_busy_set(rng, n, *, touching=False):
    """A non-overlapping interval list; touching=True makes endpoints exact."""
    out = []
    t = rng.uniform(0.0, 5.0)
    for i in range(n):
        if touching and out and rng.random() < 0.5:
            start = out[-1][1]  # float-exact shared endpoint
        else:
            start = t + rng.uniform(0.01, 3.0)
        dur = rng.uniform(0.05, 4.0)
        out.append((start, start + dur, f"t{i}"))
        t = start + dur
    return out


def build(intervals):
    idx = IntervalIndex()
    for s, e, tag in intervals:
        idx.add(s, e, tag)
    return idx


# --------------------------------------------------------------------- #
# seeded-random sweeps                                                  #
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("seed", range(40))
def test_earliest_fit_matches_linear_sweep(seed):
    rng = random.Random(seed)
    busy = random_busy_set(rng, rng.randint(0, 12), touching=bool(seed % 2))
    idx = build(busy)
    for _ in range(50):
        ready = rng.uniform(-1.0, busy[-1][1] + 2.0 if busy else 10.0)
        duration = rng.choice([0.0, rng.uniform(0.001, 5.0)])
        allow = rng.random() < 0.8
        got = idx.earliest_fit(ready, duration, allow_insertion=allow)
        want = linear_earliest_fit(busy, ready, duration, allow_insertion=allow)
        assert got == want, (seed, ready, duration, allow, busy)
        # The fit must actually be usable: placing it may not overlap.
        if duration > 0:
            assert not [
                (s, e) for s, e, _ in busy
                if e > got + OVERLAP_TOL and s + OVERLAP_TOL < got + duration
            ]


@pytest.mark.parametrize("seed", range(40))
def test_overlapping_matches_linear_sweep(seed):
    rng = random.Random(100 + seed)
    busy = random_busy_set(rng, rng.randint(0, 15), touching=bool(seed % 2))
    idx = build(busy)
    horizon = (busy[-1][1] if busy else 5.0) + 1.0
    for _ in range(50):
        a = rng.uniform(-1.0, horizon)
        b = a + rng.choice([0.0, rng.uniform(0.0, horizon)])
        assert sorted(idx.overlapping(a, b)) == linear_overlapping(busy, a, b)


@pytest.mark.parametrize("seed", range(40))
def test_add_remove_round_trip(seed):
    rng = random.Random(200 + seed)
    busy = random_busy_set(rng, rng.randint(1, 12), touching=bool(seed % 3))
    idx = build(busy)
    # Remove in random order; the survivors must stay queryable & sorted.
    order = busy[:]
    rng.shuffle(order)
    alive = set(busy)
    for s, e, tag in order:
        idx.remove(s, e, tag)
        alive.discard((s, e, tag))
        assert idx.intervals == sorted(alive)
    assert idx.intervals == []
    assert idx.last_end() == 0.0


@pytest.mark.parametrize("seed", range(25))
def test_max_overlap_matches_quadratic_count(seed):
    rng = random.Random(300 + seed)
    ivs = []
    for _ in range(rng.randint(0, 20)):
        s = rng.uniform(0.0, 10.0)
        e = s + rng.choice([0.0, rng.uniform(0.0, 4.0)])  # some zero-length
        ivs.append((s, e))
    assert max_overlap(ivs) == linear_max_overlap(ivs)


# --------------------------------------------------------------------- #
# exact-endpoint and error semantics                                    #
# --------------------------------------------------------------------- #


def test_touching_endpoints_are_legal_and_fit_exactly():
    idx = IntervalIndex()
    idx.add(0.0, 1.0, "a")
    idx.add(1.0, 2.0, "b")  # float-exact shared endpoint: no overlap
    idx.add(3.0, 4.0, "c")
    # A duration that exactly fills the [2, 3] gap must land at 2.0.
    assert idx.earliest_fit(0.0, 1.0) == 2.0
    # Zero-duration requests sit on the boundary.
    assert idx.earliest_fit(1.0, 0.0) == 1.0
    # overlapping() is half-open: the shared endpoint does not overlap.
    assert idx.overlapping(1.0, 1.0) == []
    assert [t for _, _, t in idx.overlapping(0.5, 1.5)] == ["a", "b"]


def test_overlap_and_reversed_rejections():
    idx = IntervalIndex()
    idx.add(0.0, 1.0, "a")
    with pytest.raises(IntervalError):
        idx.add(0.5, 1.5, "b")  # overlaps a
    with pytest.raises(IntervalError):
        idx.add(2.0, 1.0, "rev")  # reversed
    with pytest.raises(IntervalError):
        idx.earliest_fit(0.0, -1.0)  # negative duration
    # Sub-tolerance overlap is allowed (accumulated float fuzz).
    idx.add(1.0 - OVERLAP_TOL / 2, 2.0, "fuzz")


def test_remove_missing_raises_keyerror():
    idx = IntervalIndex()
    idx.add(0.0, 1.0, "a")
    with pytest.raises(KeyError):
        idx.remove(0.0, 1.0, "other-tag")
    with pytest.raises(KeyError):
        idx.remove(5.0, 6.0, "a")


def test_allow_insertion_false_appends_after_tail():
    idx = IntervalIndex()
    idx.add(0.0, 1.0, "a")
    idx.add(5.0, 6.0, "b")
    # The [1, 5] hole is ignored without insertion.
    assert idx.earliest_fit(0.0, 1.0, allow_insertion=False) == 6.0
    assert idx.earliest_fit(9.0, 1.0, allow_insertion=False) == 9.0


def test_free_gaps_partitions_the_horizon():
    idx = IntervalIndex()
    idx.add(1.0, 2.0, "a")
    idx.add(4.0, 5.0, "b")
    assert idx.free_gaps(6.0) == [(0.0, 1.0), (2.0, 4.0), (5.0, 6.0)]


# --------------------------------------------------------------------- #
# optional hypothesis pass                                              #
# --------------------------------------------------------------------- #


def test_hypothesis_fuzz_earliest_fit():
    hypothesis = pytest.importorskip("hypothesis")
    st = pytest.importorskip("hypothesis.strategies")

    @hypothesis.given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        ready=st.floats(min_value=-2.0, max_value=50.0,
                        allow_nan=False, allow_infinity=False),
        duration=st.floats(min_value=0.0, max_value=10.0,
                           allow_nan=False, allow_infinity=False),
    )
    @hypothesis.settings(max_examples=200, deadline=None)
    def run(seed, ready, duration):
        rng = random.Random(seed)
        busy = random_busy_set(rng, rng.randint(0, 10), touching=True)
        idx = build(busy)
        got = idx.earliest_fit(ready, duration)
        assert got == linear_earliest_fit(busy, ready, duration)

    run()
