"""Tests for the orchestrator and the public API."""

import pytest

from repro import Orchestrator, RunConfig, compare_schedulers, run_workflow
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform import presets
from repro.workflows.generators import montage
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, cpu_task


class TestRunConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            RunConfig(mode="psychic")

    def test_unknown_scheduler_resolution_fails(self):
        with pytest.raises(KeyError):
            RunConfig(scheduler="nonesuch").resolve_scheduler()

    def test_scheduler_instance_passthrough(self):
        from repro.core.hdws import HdwsScheduler

        sched = HdwsScheduler(use_locality=False)
        assert RunConfig(scheduler=sched).resolve_scheduler() is sched


class TestOrchestrator:
    def test_static_run_returns_plan(self, small_montage, hybrid_cluster):
        result = run_workflow(small_montage, hybrid_cluster, seed=1)
        assert result.plan is not None
        assert result.success
        assert result.workflow == small_montage.name
        assert result.cluster == hybrid_cluster.name

    def test_dynamic_run_has_no_plan(self, small_montage, hybrid_cluster):
        result = run_workflow(
            small_montage, hybrid_cluster, mode="dynamic", seed=1
        )
        assert result.plan is None
        assert result.success

    def test_adaptive_run(self, small_montage, hybrid_cluster):
        result = run_workflow(
            small_montage, hybrid_cluster, mode="adaptive", seed=1,
            noise_cv=0.3,
        )
        assert result.success

    def test_invalid_workflow_rejected(self, hybrid_cluster):
        wf = Workflow("bad")
        wf.add_file(DataFile("ghost", 1.0))
        wf.add_task(cpu_task("t", 1.0, inputs=("ghost",)))
        with pytest.raises(Exception):
            run_workflow(wf, hybrid_cluster)

    def test_validation_can_be_skipped(self, hybrid_cluster):
        wf = Workflow("odd")
        wf.add_file(DataFile("orphan", 1.0))  # unused file: invalid
        wf.add_file(DataFile("o", 1.0))
        wf.add_task(cpu_task("t", 1.0, outputs=("o",)))
        result = run_workflow(wf, hybrid_cluster, validate=False)
        assert result.success

    def test_summary_keys(self, small_montage, hybrid_cluster):
        result = run_workflow(small_montage, hybrid_cluster, seed=1)
        summary = result.summary()
        for key in ("makespan", "energy_j", "edp", "network_mb", "success"):
            assert key in summary
        assert summary["success"] == 1.0

    def test_same_seed_reproducible(self, small_montage, hybrid_cluster):
        r1 = run_workflow(small_montage, hybrid_cluster, seed=9, noise_cv=0.4)
        r2 = run_workflow(small_montage, hybrid_cluster, seed=9, noise_cv=0.4)
        assert r1.makespan == r2.makespan
        assert r1.energy.total_joules == r2.energy.total_joules

    def test_cluster_reset_between_runs(self, small_montage, hybrid_cluster):
        run_workflow(small_montage, hybrid_cluster, seed=1)
        first_busy = sum(d.busy_time() for d in hybrid_cluster.devices)
        run_workflow(small_montage, hybrid_cluster, seed=1)
        second_busy = sum(d.busy_time() for d in hybrid_cluster.devices)
        assert first_busy == pytest.approx(second_busy)

    def test_default_cluster_is_workstation(self, small_montage):
        result = run_workflow(small_montage, seed=1)
        assert result.cluster == "workstation"

    def test_faulty_run_with_recovery(self, small_montage, hybrid_cluster):
        result = run_workflow(
            small_montage, hybrid_cluster, seed=2,
            fault_model=FaultModel(task_fault_rate=1.0),
            recovery=RecoveryPolicy.retry(40),
        )
        assert result.success


class TestCompareSchedulers:
    def test_results_keyed_by_name(self, small_montage, hybrid_cluster):
        results = compare_schedulers(
            small_montage, hybrid_cluster, ["heft", "minmin"], seed=1
        )
        assert set(results) == {"heft", "minmin"}

    def test_scheduler_instances_accepted(self, small_montage, hybrid_cluster):
        from repro.core.hdws import HdwsScheduler

        results = compare_schedulers(
            small_montage, hybrid_cluster, [HdwsScheduler(), "heft"], seed=1
        )
        assert "hdws" in results

    def test_identical_noise_across_runs(self, small_montage, hybrid_cluster):
        """Same seed + same algorithm = identical noisy run, even through
        the compare_schedulers wrapper."""
        r1 = compare_schedulers(
            small_montage, hybrid_cluster, ["heft"], seed=4, noise_cv=0.5
        )["heft"]
        r2 = run_workflow(
            small_montage, hybrid_cluster, scheduler="heft", seed=4,
            noise_cv=0.5,
        )
        assert r1.makespan == pytest.approx(r2.makespan)
