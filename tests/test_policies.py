"""Tests for execution policies."""

import pytest

from repro.core.executor import WorkflowExecutor
from repro.core.policies import DynamicMctPolicy, StaticPolicy
from repro.platform import presets
from repro.schedulers.base import SchedulingContext
from repro.schedulers.heft import HeftScheduler
from repro.workflows.generators import montage


@pytest.fixture
def setup():
    wf = montage(n_images=6, seed=4)
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
    plan = HeftScheduler().schedule(SchedulingContext(wf, cluster))
    return wf, cluster, plan


class TestStaticPolicy:
    def test_follows_planned_devices_without_noise(self, setup):
        wf, cluster, plan = setup
        cluster.reset()
        executor = WorkflowExecutor(wf, cluster, StaticPolicy(plan))
        result = executor.run()
        assert result.success
        for name, rec in result.records.items():
            assert rec.device == plan.device_of(name)

    def test_queues_built_in_plan_order(self, setup):
        wf, cluster, plan = setup
        cluster.reset()
        policy = StaticPolicy(plan)
        executor = WorkflowExecutor(wf, cluster, policy)
        policy.prepare(executor)
        for uid, queue in policy._queues.items():
            assert queue == plan.tasks_on(uid)

    def test_select_only_offers_ready_heads(self, setup):
        wf, cluster, plan = setup
        cluster.reset()
        policy = StaticPolicy(plan)
        executor = WorkflowExecutor(wf, cluster, policy)
        policy.prepare(executor)
        # before run() marks entries ready, nothing is dispatchable
        assert policy.select(executor) == []

    def test_no_repair_leaves_tasks_stranded(self, setup):
        wf, cluster, plan = setup
        cluster.reset()
        policy = StaticPolicy(plan, repair=False)
        executor = WorkflowExecutor(wf, cluster, policy)
        policy.prepare(executor)
        victim_uid = plan.devices_used()[0]
        victim = cluster.device(victim_uid)
        victim.failed = True
        policy.on_device_failure(executor, victim)
        assert victim_uid not in policy._queues


class TestDynamicMctPolicy:
    def test_prefers_fast_devices(self, setup):
        wf, cluster, _plan = setup
        cluster.reset()
        executor = WorkflowExecutor(wf, cluster, DynamicMctPolicy())
        result = executor.run()
        assert result.success
        # mProject tasks are strongly GPU-accelerable; with free choice the
        # greedy mapper must put at least one on a GPU.
        gpu_used = any(
            "gpu" in rec.device for rec in result.records.values()
            if rec.name.startswith("mProject")
        )
        assert gpu_used

    def test_unranked_variant_completes(self, setup):
        wf, cluster, _plan = setup
        cluster.reset()
        executor = WorkflowExecutor(wf, cluster, DynamicMctPolicy(ranked=False))
        assert executor.run().success

    def test_one_task_per_device_per_round(self, setup):
        wf, cluster, _plan = setup
        cluster.reset()
        policy = DynamicMctPolicy()
        executor = WorkflowExecutor(wf, cluster, policy)
        policy.prepare(executor)
        for name, preds in executor.unfinished_preds.items():
            if not preds:
                executor._mark_ready(name)
        decisions = policy.select(executor)
        devices = [d.uid for _t, d, _s in decisions]
        assert len(devices) == len(set(devices))
