"""Model-checker tests.

Mutation self-tests in the sanitizer's style: every static check must
fire on a configuration seeded with exactly its target defect, and the
clean configurations used throughout the suite must pass.  Defensive
checks whose defect the domain constructors already reject (negative
power draws, negative fault rates) are seeded by bypassing the frozen
dataclass validation — the checker must still catch hand-built or
deserialized objects that skipped ``__post_init__``.
"""

import json

import pytest

from repro.cli import main
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform.cluster import Cluster
from repro.platform.devices import DeviceClass, DeviceSpec
from repro.platform.interconnect import Interconnect, Link
from repro.platform.nodes import NodeSpec
from repro.platform.power import DvfsState, PowerModel
from repro.staticcheck import (
    Severity,
    StaticCheckError,
    check_data,
    check_fault_model,
    check_placement,
    check_platform,
    check_recovery,
    check_run,
    precheck_job,
)
from repro.workflows.generators import montage
from repro.workflows.graph import Workflow
from repro.workflows.serialize import workflow_to_json
from repro.workflows.task import DataFile, Task, cpu_task


def cpu_spec(**kwargs) -> DeviceSpec:
    kwargs.setdefault("name", "testcpu")
    kwargs.setdefault("speed", 10.0)
    return DeviceSpec(device_class=DeviceClass.CPU, **kwargs)


def one_node_cluster(spec=None, **node_kwargs) -> Cluster:
    node = NodeSpec("n0", (spec or cpu_spec(),), **node_kwargs)
    return Cluster("test-cluster", [node])


def chain_workflow() -> Workflow:
    wf = Workflow("chain")
    wf.add_file(DataFile("fin", 1.0, initial=True))
    wf.add_file(DataFile("mid", 1.0))
    wf.add_file(DataFile("out", 1.0))
    wf.add_task(cpu_task("a", 10.0, inputs=("fin",), outputs=("mid",)))
    wf.add_task(cpu_task("b", 10.0, inputs=("mid",), outputs=("out",)))
    return wf


def gpu_only_workflow() -> Workflow:
    wf = Workflow("gpu-only")
    wf.add_file(DataFile("out", 1.0))
    wf.add_task(Task("g", 10.0, affinity={DeviceClass.CPU: 0.0,
                                          DeviceClass.GPU: 5.0},
                     outputs=("out",)))
    return wf


def insane_power(idle: float, busy: float, sleep: float = 0.5) -> PowerModel:
    """A PowerModel bypassing constructor validation (deserialization twin)."""
    power = object.__new__(PowerModel)
    object.__setattr__(power, "idle_watts", idle)
    object.__setattr__(power, "busy_watts", busy)
    object.__setattr__(power, "sleep_watts", sleep)
    object.__setattr__(power, "dvfs_states", [])
    return power


def insane_faults(rate: float = 0.0, mtbf=None) -> FaultModel:
    """A FaultModel bypassing constructor validation."""
    fm = object.__new__(FaultModel)
    object.__setattr__(fm, "task_fault_rate", rate)
    object.__setattr__(fm, "device_mtbf", mtbf)
    object.__setattr__(fm, "device_data_loss", True)
    return fm


def by_check(findings, check):
    return [f for f in findings if f.check == check]


class TestPlacement:
    def test_stranded_task_no_class_fires(self):
        findings = check_placement(gpu_only_workflow(), one_node_cluster())
        hits = by_check(findings, "stranded-task")
        assert hits and hits[0].severity == Severity.ERROR
        assert "no alive device" in hits[0].message

    def test_stranded_task_memory_fires(self):
        wf = Workflow("fat")
        wf.add_file(DataFile("out", 1.0))
        wf.add_task(cpu_task("fat", 10.0, memory_gb=1e6, outputs=("out",)))
        findings = check_placement(wf, one_node_cluster())
        hits = by_check(findings, "stranded-task")
        assert hits and "GB" in hits[0].message

    def test_stranded_after_device_loss_is_fault_fragile(self):
        findings = check_placement(
            chain_workflow(), one_node_cluster(),
            fault_model=FaultModel(device_mtbf=1e6),
        )
        hits = by_check(findings, "fault-fragile")
        assert hits and hits[0].severity == Severity.WARNING

    def test_clean_placement_has_no_findings(self):
        assert check_placement(chain_workflow(), one_node_cluster()) == []


class TestData:
    def test_file_oversized_fires(self):
        wf = chain_workflow()
        wf.add_file(DataFile("huge", 1e9, initial=True))
        wf.add_task(cpu_task("r", 1.0, inputs=("huge",)))
        cluster = one_node_cluster(disk_capacity_gb=100.0)
        assert by_check(check_data(wf, cluster), "file-oversized")

    def test_file_location_unknown_fires(self):
        wf = chain_workflow()
        wf.add_file(DataFile("lost", 1.0, initial=True, location="mars"))
        wf.add_task(cpu_task("r", 1.0, inputs=("lost",)))
        assert by_check(check_data(wf, one_node_cluster()),
                        "file-location-unknown")

    def test_node_storage_overflow_fires(self):
        wf = chain_workflow()
        wf.add_file(DataFile("big1", 60.0 * 1024, initial=True, location="n0"))
        wf.add_file(DataFile("big2", 60.0 * 1024, initial=True, location="n0"))
        wf.add_task(cpu_task("r", 1.0, inputs=("big1", "big2")))
        cluster = one_node_cluster(disk_capacity_gb=100.0)
        assert by_check(check_data(wf, cluster), "node-storage-overflow")

    def test_file_unread_fires_as_warning(self):
        wf = chain_workflow()
        wf.add_file(DataFile("staged", 1.0, initial=True))
        hits = by_check(check_data(wf, one_node_cluster()), "file-unread")
        assert hits and hits[0].severity == Severity.WARNING

    def test_clean_data_has_no_findings(self):
        assert check_data(chain_workflow(), one_node_cluster()) == []


class TestPlatform:
    def test_power_busy_below_idle_fires(self):
        spec = cpu_spec(power=insane_power(idle=100.0, busy=10.0))
        hits = by_check(check_platform(one_node_cluster(spec)), "power-insane")
        assert hits and "less busy" in hits[0].message

    def test_power_negative_draw_fires(self):
        spec = cpu_spec(power=insane_power(idle=-5.0, busy=50.0))
        hits = by_check(check_platform(one_node_cluster(spec)), "power-insane")
        assert hits and "negative" in hits[0].message

    def test_sleep_above_idle_fires_as_warning(self):
        spec = cpu_spec(power=PowerModel(idle_watts=10.0, busy_watts=100.0,
                                         sleep_watts=25.0))
        hits = by_check(check_platform(one_node_cluster(spec)),
                        "power-sleep-above-idle")
        assert hits and hits[0].severity == Severity.WARNING

    def test_dvfs_duplicate_fires(self):
        ladder = [DvfsState("p0", 1.0, 1.0), DvfsState("p0", 0.7, 0.35)]
        spec = cpu_spec(power=PowerModel(dvfs_states=ladder))
        assert by_check(check_platform(one_node_cluster(spec)),
                        "dvfs-duplicate")

    def test_storage_insane_fires(self):
        cluster = one_node_cluster()
        cluster.storage_latency = -1.0
        assert by_check(check_platform(cluster), "storage-insane")

    def test_missing_link_fires(self):
        ic = Interconnect()
        ic.add_link(Link("n0", "n1", bandwidth=1000.0, latency=1e-3))
        cluster = Cluster(
            "half-wired",
            [NodeSpec("n0", (cpu_spec(),)), NodeSpec("n1", (cpu_spec(),))],
            interconnect=ic,
        )
        hits = by_check(check_platform(cluster), "missing-link")
        assert hits and "n1->n0" in hits[0].location

    def test_clean_platform_has_no_findings(self, hybrid_cluster):
        assert check_platform(hybrid_cluster) == []


class TestFaultModel:
    def test_negative_rate_fires(self):
        assert by_check(
            check_fault_model(insane_faults(rate=-1.0), chain_workflow(),
                              one_node_cluster()),
            "fault-insane",
        )

    def test_nonpositive_mtbf_fires(self):
        assert by_check(
            check_fault_model(insane_faults(mtbf=0.0), chain_workflow(),
                              one_node_cluster()),
            "fault-insane",
        )

    def test_fault_rate_extreme_fires(self):
        # work 10 on a 10 Gop/s device = 1 s/attempt; 100 faults/s dooms it.
        findings = check_fault_model(
            FaultModel(task_fault_rate=100.0), chain_workflow(),
            one_node_cluster(),
        )
        hits = by_check(findings, "fault-rate-extreme")
        assert hits and hits[0].severity == Severity.WARNING

    def test_mtbf_below_runtime_fires(self):
        findings = check_fault_model(
            FaultModel(device_mtbf=1e-3), chain_workflow(),
            one_node_cluster(),
        )
        assert by_check(findings, "mtbf-below-runtime")

    def test_mild_faults_are_clean(self):
        findings = check_fault_model(
            FaultModel(task_fault_rate=1e-4, device_mtbf=1e7),
            chain_workflow(), one_node_cluster(),
        )
        assert findings == []


class TestRecovery:
    def test_replication_overcommit_fires(self):
        findings = check_recovery(
            RecoveryPolicy(replicate_tasks=3), chain_workflow(),
            one_node_cluster(),
        )
        hits = by_check(findings, "replication-overcommit")
        assert hits and hits[0].severity == Severity.WARNING

    def test_feasible_replication_is_clean(self, hybrid_cluster):
        assert check_recovery(
            RecoveryPolicy(replicate_tasks=2), chain_workflow(),
            hybrid_cluster,
        ) == []


class TestCheckRun:
    def test_clean_cell_is_ok(self, small_montage, hybrid_cluster):
        report = check_run(small_montage, hybrid_cluster,
                           fault_model=FaultModel(task_fault_rate=1e-4),
                           recovery=RecoveryPolicy())
        assert report.ok and not report.findings

    def test_infeasible_cell_raises(self):
        report = check_run(gpu_only_workflow(), one_node_cluster())
        assert not report.ok
        with pytest.raises(StaticCheckError) as exc_info:
            report.raise_if_errors()
        assert "stranded-task" in str(exc_info.value)

    def test_warnings_do_not_block(self):
        wf = chain_workflow()
        wf.add_file(DataFile("staged", 1.0, initial=True))  # file-unread
        report = check_run(wf, one_node_cluster())
        assert report.warnings and report.ok
        report.raise_if_errors()  # must not raise

    def test_render_ends_with_summary(self):
        report = check_run(chain_workflow(), one_node_cluster())
        assert report.render().splitlines()[-1] == "static check: clean"


class TestPrecheckJob:
    def test_golden_cells_are_clean(self):
        from repro.runner.campaign import golden_jobs

        for job in golden_jobs():
            report = precheck_job(job)
            assert report.ok, f"{job.label}: {report.render()}"

    def test_infeasible_cell_is_caught(self):
        from repro.experiments.common import make_job, preset_spec

        job = make_job(gpu_only_workflow(), preset_spec("cpu"),
                       scheduler="heft", label="doomed")
        report = precheck_job(job)
        assert not report.ok
        assert report.by_check("stranded-task")


class TestOrchestratorPrecheck:
    def test_precheck_blocks_infeasible_run(self):
        from repro import run_workflow

        with pytest.raises(StaticCheckError):
            run_workflow(gpu_only_workflow(), one_node_cluster(),
                         scheduler="heft", precheck=True, validate=False)

    def test_precheck_env_variable(self, monkeypatch):
        from repro import run_workflow

        monkeypatch.setenv("REPRO_PRECHECK", "1")
        with pytest.raises(StaticCheckError):
            run_workflow(gpu_only_workflow(), one_node_cluster(),
                         scheduler="heft", validate=False)

    def test_precheck_clean_run_succeeds(self, small_montage, hybrid_cluster):
        from repro import run_workflow

        result = run_workflow(small_montage, hybrid_cluster,
                              scheduler="heft", precheck=True)
        assert result.success


class TestSanitizerBridge:
    def test_violation_converts_to_finding(self):
        from repro.sanitizer import Violation

        finding = Violation("busy-overlap", 12.5, "two clones overlap").as_finding()
        assert finding.check == "busy-overlap"
        assert finding.severity == Severity.ERROR
        assert finding.layer == "runtime"
        assert "t=12.5" in finding.location
        assert "two clones overlap" in str(finding)


class TestCli:
    def test_check_clean_exits_zero(self, capsys):
        assert main(["check", "--workflow", "montage", "--size", "10"]) == 0
        out = capsys.readouterr().out
        assert "static check: clean" in out

    def test_check_infeasible_exits_nonzero(self, tmp_path, capsys):
        doc = json.loads(workflow_to_json(montage(n_images=3, seed=0)))
        for task in doc["tasks"]:
            task["affinity"] = {"gpu": 1.0, "cpu": 0.0}
        path = tmp_path / "gpu_only.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        rc = main(["check", "--input", str(path), "--cluster", "cpu"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "stranded-task" in out
        assert "error" in out

    def test_run_precheck_flag(self, capsys):
        rc = main(["run", "--workflow", "montage", "--size", "10",
                   "--precheck"])
        assert rc == 0
