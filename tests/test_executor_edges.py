"""Edge-case tests for the executor."""

import pytest

from repro import run_workflow
from repro.core.executor import WorkflowExecutor
from repro.core.policies import StaticPolicy
from repro.platform import presets
from repro.platform.cluster import Cluster
from repro.platform.devices import catalogue
from repro.platform.nodes import NodeSpec
from repro.schedulers.base import SchedulingContext
from repro.schedulers.heft import HeftScheduler
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, cpu_task, gpu_task


def run_static(wf, cluster, **kwargs):
    cluster.reset()
    plan = HeftScheduler().schedule(SchedulingContext(wf, cluster))
    executor = WorkflowExecutor(wf, cluster, StaticPolicy(plan), **kwargs)
    return executor


class TestMinimalWorkflows:
    def test_single_task_no_files(self, workstation):
        wf = Workflow("one")
        wf.add_file(DataFile("out", 0.1))
        wf.add_task(cpu_task("only", 50.0, outputs=("out",)))
        result = run_workflow(wf, workstation, seed=1)
        assert result.success
        assert result.makespan == pytest.approx(1.0, rel=0.01)  # 50/50 Gop/s

    def test_pure_control_dependencies(self, workstation):
        wf = Workflow("control")
        wf.add_file(DataFile("oa", 0.001))
        wf.add_file(DataFile("ob", 0.001))
        wf.add_task(cpu_task("a", 10.0, outputs=("oa",)))
        wf.add_task(cpu_task("b", 10.0, outputs=("ob",)))
        wf.add_control_edge("a", "b")
        result = run_workflow(wf, workstation, seed=1)
        assert result.success
        records = result.execution.records
        assert records["a"].finish <= records["b"].start + 1e-9

    def test_zero_size_outputs(self, workstation):
        wf = Workflow("zero")
        wf.add_file(DataFile("marker", 0.0))
        wf.add_task(cpu_task("p", 10.0, outputs=("marker",)))
        wf.add_task(cpu_task("c", 10.0, inputs=("marker",)))
        result = run_workflow(wf, workstation, seed=1)
        assert result.success


class TestInitialFileLocations:
    def test_born_on_node_skips_storage(self):
        cat = catalogue()
        cluster = Cluster("two", [
            NodeSpec.of("n0", [cat["cpu-std"]]),
            NodeSpec.of("n1", [cat["cpu-std"]]),
        ])
        wf = Workflow("local")
        wf.add_file(DataFile("cap", 100.0, initial=True, location="n0"))
        wf.add_file(DataFile("out", 0.1))
        wf.add_task(cpu_task("t", 10.0, inputs=("cap",), outputs=("out",)))
        result = run_workflow(wf, cluster, seed=1)
        assert result.success
        # No shared-storage staging happened for the 100 MB input.
        assert result.execution.staging_mb == 0.0

    def test_unknown_location_fails_loudly(self, workstation):
        wf = Workflow("bad")
        wf.add_file(DataFile("cap", 1.0, initial=True, location="mars"))
        wf.add_file(DataFile("out", 0.1))
        wf.add_task(cpu_task("t", 10.0, inputs=("cap",), outputs=("out",)))
        with pytest.raises(KeyError):
            run_workflow(wf, workstation, seed=1)


class TestStoreOverflow:
    def test_oversized_inputs_stream_without_caching(self):
        cat = catalogue()
        # 1 GB disk; the 5 GB database cannot be cached.
        cluster = Cluster("tiny", [
            NodeSpec.of("n0", [cat["cpu-std"]], disk_capacity_gb=1.0),
        ])
        wf = Workflow("big")
        wf.add_file(DataFile("db", 5000.0, initial=True))
        wf.add_file(DataFile("out", 0.1))
        wf.add_task(cpu_task("t", 10.0, inputs=("db",), outputs=("out",)))
        result = run_workflow(wf, cluster, seed=1)
        assert result.success
        assert len(result.execution.trace.of_kind("store.overflow")) >= 1

    def test_eviction_counted(self):
        cat = catalogue()
        cluster = Cluster("small", [
            NodeSpec.of("n0", [cat["cpu-std"]], disk_capacity_gb=1.0),
        ])
        wf = Workflow("churn")
        prev = None
        for i in range(4):
            fin = wf.add_file(DataFile(f"in{i}", 400.0, initial=True))
            out = wf.add_file(DataFile(f"out{i}", 400.0))
            inputs = (fin.name,) if prev is None else (fin.name, prev)
            wf.add_task(cpu_task(f"t{i}", 10.0, inputs=inputs,
                                 outputs=(out.name,)))
            prev = out.name
        result = run_workflow(wf, cluster, seed=1)
        assert result.success
        assert result.execution.evictions > 0


class TestGpuOnlyTasks:
    def test_cpu_opt_out_runs_on_gpu(self, workstation):
        from repro.platform.devices import DeviceClass
        from repro.workflows.task import Task

        wf = Workflow("gpuonly")
        wf.add_file(DataFile("o", 0.1))
        wf.add_task(Task("g", 700.0,
                         affinity={DeviceClass.CPU: 0.0, DeviceClass.GPU: 1.0},
                         outputs=("o",)))
        wf.add_task(cpu_task("c", 1.0, inputs=("o",)))
        result = run_workflow(wf, workstation, seed=1)
        assert result.success
        assert "gpu" in result.execution.records["g"].device


class TestPartialRuns:
    def test_max_time_reports_partial_metrics(self, small_montage, hybrid_cluster):
        result = run_workflow(
            small_montage, hybrid_cluster, seed=1, max_time=0.5
        )
        assert not result.success
        assert 0 < result.execution.completed_tasks < small_montage.n_tasks

    def test_executor_state_queries(self, small_montage, hybrid_cluster):
        executor = run_static(small_montage, hybrid_cluster)
        assert executor.now == 0.0
        assert len(executor.free_devices()) == len(hybrid_cluster.devices)
        assert executor.ready_tasks() == []
        result = executor.run()
        assert result.success
        assert executor.ready_tasks() == []
        assert not executor.busy_devices


class TestDeviceFailureDuringStaging:
    def test_staging_clone_retries_on_surviving_node(self):
        from repro.faults.models import DeviceFault

        cat = catalogue()
        cluster = Cluster("two", [
            NodeSpec.of("n0", [cat["cpu-std"]]),
            NodeSpec.of("n1", [cat["cpu-std"]]),
        ])
        wf = Workflow("stagefail")
        wf.add_file(DataFile("db", 2000.0, initial=True))
        wf.add_file(DataFile("out", 0.1))
        wf.add_task(cpu_task("t", 10.0, inputs=("db",), outputs=("out",)))
        executor = run_static(wf, cluster, seed=1)
        target = executor.policy.schedule.assignments["t"].device
        # Fail the planned device while "db" is still in flight towards it.
        executor.sim.schedule_at(
            1e-4, executor._on_device_failure,
            DeviceFault(time=1e-4, device_uid=target),
        )
        result = executor.run()
        assert result.success
        assert result.device_faults == 1
        assert result.records["t"].faults == 1
        assert result.records["t"].device != target
        # The clone never reached execution: zero progress at the fault.
        fault = result.trace.of_kind("fault.task")[0]
        assert fault.get("at_offset") == 0.0


class TestPreemptedCloneEnergy:
    def test_preempt_energy_matches_busy_power(self, small_montage, hybrid_cluster):
        from repro.faults.recovery import RecoveryPolicy

        result = run_workflow(
            small_montage, hybrid_cluster, scheduler="heft", seed=3,
            noise_cv=0.3, sanitize=True,
            recovery=RecoveryPolicy.replicated(k=2, retries=3),
        )
        assert result.success
        preempts = result.execution.trace.of_kind("task.preempt")
        assert preempts  # replication raced at least once
        for rec in preempts:
            device = hybrid_cluster.device(rec.get("device"))
            expected = device.spec.power.busy_power(None) * rec.get("duration")
            assert rec.get("energy_j") == pytest.approx(expected, rel=1e-9)


class TestRegenerationAfterDataLoss:
    def test_lost_outputs_regenerate_and_run_succeeds(self):
        from repro.faults.models import FaultModel
        from repro.faults.recovery import RecoveryPolicy
        from repro.workflows.generators import montage

        wf = montage(n_images=5, seed=7)
        cluster = presets.hybrid_cluster(
            nodes=2, cores_per_node=2, gpus_per_node=1
        )
        result = run_workflow(
            wf, cluster, scheduler="heft", seed=1, noise_cv=0.2,
            sanitize=True,
            fault_model=FaultModel(device_mtbf=2.0, device_data_loss=True),
            recovery=RecoveryPolicy.retry(10),
        )
        assert result.success
        ex = result.execution
        assert ex.device_faults >= 1
        assert ex.regenerations >= 1
        assert len(ex.trace.of_kind("task.regenerate")) == ex.regenerations


class TestCheckpointAcrossCrashes:
    def test_progress_survives_crashes(self):
        from repro.faults.models import FaultModel
        from repro.faults.recovery import RecoveryPolicy
        from repro.workflows.generators import montage

        wf = montage(n_images=5, seed=7)
        cluster = presets.hybrid_cluster(
            nodes=2, cores_per_node=2, gpus_per_node=1
        )
        result = run_workflow(
            wf, cluster, scheduler="heft", seed=0, noise_cv=0.2,
            sanitize=True,
            fault_model=FaultModel(task_fault_rate=0.5),
            recovery=RecoveryPolicy.checkpoint(interval_s=0.05, retries=30),
        )
        assert result.success
        ex = result.execution
        assert ex.task_faults >= 1
        crashed = [r for r in ex.records.values() if r.faults > 0]
        assert crashed
        for rec in crashed:
            assert rec.attempts >= 2
            assert rec.progress_fraction == pytest.approx(1.0)
