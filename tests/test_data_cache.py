"""Tests for the LRU node store."""

import pytest

from repro.data.cache import EvictionError, NodeStore


class TestNodeStore:
    def test_put_and_query(self):
        s = NodeStore("n0", 100.0)
        assert s.put("a", 30.0) == []
        assert s.has("a")
        assert s.used_mb == 30.0
        assert s.free_mb == 70.0

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            NodeStore("n0", 0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NodeStore("n0", 10.0).put("a", -1.0)

    def test_lru_eviction_order(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 40.0)
        s.put("b", 40.0)
        evicted = s.put("c", 40.0)
        assert evicted == ["a"]
        assert s.files() == ["b", "c"]
        assert s.evictions == 1
        assert s.bytes_evicted_mb == 40.0

    def test_touch_refreshes_recency(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 40.0)
        s.put("b", 40.0)
        s.touch("a")
        evicted = s.put("c", 40.0)
        assert evicted == ["b"]

    def test_reput_refreshes_recency_without_duplication(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 40.0)
        s.put("b", 40.0)
        assert s.put("a", 40.0) == []
        assert s.used_mb == 80.0
        evicted = s.put("c", 40.0)
        assert evicted == ["b"]

    def test_pinned_files_survive_eviction(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 40.0)
        s.pin("a")
        s.put("b", 40.0)
        evicted = s.put("c", 40.0)
        assert evicted == ["b"]
        assert s.has("a")

    def test_all_pinned_raises(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 60.0)
        s.pin("a")
        with pytest.raises(EvictionError):
            s.put("b", 60.0)

    def test_oversized_file_raises(self):
        s = NodeStore("n0", 100.0)
        with pytest.raises(EvictionError):
            s.put("huge", 200.0)

    def test_pin_absent_raises(self):
        with pytest.raises(KeyError):
            NodeStore("n0", 10.0).pin("ghost")

    def test_unpin_absent_noop(self):
        NodeStore("n0", 10.0).unpin("ghost")

    def test_remove(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 10.0)
        s.remove("a")
        assert not s.has("a")
        s.remove("a")  # idempotent

    def test_remove_pinned_rejected(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 10.0)
        s.pin("a")
        with pytest.raises(ValueError):
            s.remove("a")

    def test_multiple_evictions_for_one_put(self):
        s = NodeStore("n0", 100.0)
        s.put("a", 30.0)
        s.put("b", 30.0)
        s.put("c", 30.0)
        evicted = s.put("big", 70.0)
        assert evicted == ["a", "b"]
        assert s.files() == ["c", "big"]
