"""Exporters: Chrome trace round-trip, text Gantt, CLI artifact flags."""

import json

from repro.cli import main
from repro.core.api import run_workflow
from repro.observe import Span, chrome_trace, device_gantt, spans_from_trace, write_json
from repro.platform import presets
from repro.workflows.generators import montage


def _spans():
    return [
        Span(sid=0, name="task a", track="dev0", start=0.0, end=2.0,
             attrs={"outcome": "done"}),
        Span(sid=1, name="exec", track="dev0", start=0.5, end=2.0, parent=0),
        Span(sid=2, name="task b", track="dev1", start=1.0, end=3.0),
        Span(sid=3, name="fault.device", track="dev1", start=2.5, end=2.5),
    ]


def _real_spans():
    result = run_workflow(
        montage(size=25, seed=5), presets.hybrid_cluster(),
        scheduler="heft", seed=5, noise_cv=0.1,
    )
    return spans_from_trace(result.execution.trace)


class TestChromeTrace:
    def test_round_trip_valid_json(self):
        doc = chrome_trace(_spans(), metadata={"scheduler": "heft"})
        parsed = json.loads(json.dumps(doc))
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["metadata"] == {"scheduler": "heft"}
        events = parsed["traceEvents"]
        assert all("ph" in e and "pid" in e for e in events)

    def test_metadata_events_name_process_and_tracks(self):
        events = chrome_trace(_spans(), process_name="proc")["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {"name": "proc"} in [e["args"] for e in meta]
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert thread_names == {"dev0", "dev1"}

    def test_complete_events_microseconds_and_parent(self):
        events = chrome_trace(_spans())["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        child = next(e for e in xs if e["name"] == "exec")
        assert child["ts"] == 0.5e6 and child["dur"] == 1.5e6
        assert child["args"]["parent"] == 0
        point = next(e for e in xs if e["name"] == "fault.device")
        assert point["dur"] == 0.0

    def _assert_monotone_per_tid(self, events):
        last = {}
        for e in events:
            if e["ph"] != "X":
                continue
            assert e["ts"] >= last.get(e["tid"], float("-inf"))
            last[e["tid"]] = e["ts"]
        assert last, "no complete events"

    def test_ts_monotone_per_tid_synthetic(self):
        self._assert_monotone_per_tid(chrome_trace(_spans())["traceEvents"])

    def test_ts_monotone_per_tid_real_run(self):
        doc = chrome_trace(_real_spans())
        json.dumps(doc)
        self._assert_monotone_per_tid(doc["traceEvents"])


class TestDeviceGantt:
    def test_rows_per_track_and_point_marker(self):
        text = device_gantt(_spans(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("track")
        assert any(line.startswith("dev0") for line in lines)
        assert any(line.startswith("dev1") for line in lines)
        assert "!" in text  # the zero-length fault span
        assert "=" in text

    def test_empty_and_zero_horizon(self):
        assert device_gantt([]) == "(no spans)"
        point = [Span(sid=0, name="x", track="t", start=0.0, end=0.0)]
        assert device_gantt(point) == "(zero-length timeline)"

    def test_real_run_renders_every_device_track(self):
        spans = _real_spans()
        text = device_gantt(spans, width=60)
        for track in {s.track for s in spans if s.parent is None}:
            assert track in text


class TestWriteJson:
    def test_sorted_keys_and_trailing_newline(self, tmp_path):
        path = tmp_path / "out.json"
        write_json(str(path), {"b": 1, "a": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 2, "b": 1}


class TestCliArtifacts:
    def test_run_metrics_and_trace_out(self, tmp_path, capsys):
        mpath = tmp_path / "metrics.json"
        tpath = tmp_path / "trace.json"
        rc = main([
            "run", "--workflow", "montage", "--size", "15",
            "--cluster", "workstation", "--noise", "0",
            "--metrics", "--metrics-out", str(mpath),
            "--trace-out", str(tpath),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tasks.completed" in out
        snap = json.loads(mpath.read_text())
        assert snap["schema"] == "repro.metrics/v1"
        assert snap["counters"]["tasks.completed"] > 0
        trace = json.loads(tpath.read_text())
        kinds = {e["ph"] for e in trace["traceEvents"]}
        assert kinds == {"M", "X"}
        assert trace["metadata"]["workflow"].startswith("montage")

    def test_campaign_artifacts(self, tmp_path, capsys):
        mpath = tmp_path / "campaign-metrics.json"
        tpath = tmp_path / "campaign-trace.json"
        rc = main([
            "exp", "t1", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--metrics-out", str(mpath), "--trace-out", str(tpath),
        ])
        assert rc == 0
        snap = json.loads(mpath.read_text())
        assert snap["schema"] == "repro.campaign-metrics/v1"
        assert "t1" in snap["experiments"]
        trace = json.loads(tpath.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
