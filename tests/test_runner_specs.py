"""Factory-spec mini-language: objects as picklable, hashable data."""

from __future__ import annotations

import pickle

import pytest

from repro.platform import presets
from repro.platform.cluster import Cluster
from repro.runner.specs import (
    FACTORY_KEY,
    build,
    factory_spec,
    is_spec,
    resolve_path,
)
from repro.schedulers.heft import HeftScheduler


def test_factory_spec_records_module_and_qualname():
    """A module-level callable is addressed by its import path."""
    spec = factory_spec(presets.hybrid_cluster, nodes=2)
    assert spec[FACTORY_KEY] == "repro.platform.presets:hybrid_cluster"
    assert spec["kwargs"] == {"nodes": 2}


def test_factory_spec_accepts_explicit_path_string():
    """'module:qualname' strings pass straight through."""
    spec = factory_spec("repro.platform.presets:hybrid_cluster", nodes=2)
    assert build(spec).name  # builds a real cluster


def test_factory_spec_rejects_lambda():
    """Lambdas can't be re-imported in a worker; refuse loudly."""
    with pytest.raises(ValueError, match="not importable"):
        factory_spec(lambda: None)


def test_factory_spec_rejects_local_function():
    """Locally-defined callables have '<locals>' qualnames; refuse."""

    def local_factory():
        return 1

    with pytest.raises(ValueError, match="not importable"):
        factory_spec(local_factory)


def test_factory_spec_rejects_bad_path_string():
    """A path without a colon is not addressable."""
    with pytest.raises(ValueError, match="module:qualname"):
        factory_spec("no_colon_here")


def test_factory_spec_sorts_kwargs():
    """kwargs are stored sorted so insertion order can't leak into keys."""
    a = factory_spec(presets.hybrid_cluster, nodes=2, cores_per_node=2)
    b = factory_spec(presets.hybrid_cluster, cores_per_node=2, nodes=2)
    assert list(a["kwargs"]) == list(b["kwargs"]) == ["cores_per_node", "nodes"]
    assert a == b


def test_factory_spec_normalizes_tuples_to_lists():
    """Tuples become lists so a spec equals its JSON round-trip."""
    spec = factory_spec("m:f", (1, 2, (3,)))
    assert spec["args"] == [[1, 2, [3]]]


def test_factory_spec_rejects_live_objects():
    """Object arguments must themselves be wrapped in factory specs."""
    with pytest.raises(TypeError, match="factory_spec"):
        factory_spec(presets.hybrid_cluster, model=HeftScheduler())


def test_nested_spec_as_argument():
    """Factory specs may nest: the inner spec is just dict data."""
    inner = factory_spec(presets.hybrid_cluster, nodes=2)
    outer = factory_spec("builtins:list", [inner])
    # Only checking it is representable + picklable, not buildable.
    assert pickle.loads(pickle.dumps(outer)) == outer


def test_is_spec():
    """Only dicts carrying the marker key count as factory nodes."""
    assert is_spec({FACTORY_KEY: "m:f"})
    assert not is_spec({"factory": "m:f"})
    assert not is_spec("m:f")
    assert not is_spec(None)


def test_resolve_path_walks_qualname():
    """Dotted qualnames resolve attribute chains (classmethods etc.)."""
    from repro.faults.recovery import RecoveryPolicy

    assert resolve_path("repro.faults.recovery:RecoveryPolicy.retry") is (
        RecoveryPolicy.retry
    )


def test_resolve_path_rejects_malformed():
    """Missing module or attribute text is a loud error."""
    with pytest.raises(ValueError):
        resolve_path("just_a_module")
    with pytest.raises(ValueError):
        resolve_path(":attr_only")


def test_build_materializes_cluster():
    """build() of a preset spec yields a live, usable Cluster."""
    spec = factory_spec(
        presets.hybrid_cluster, nodes=2, cores_per_node=2, gpus_per_node=1
    )
    cluster = build(spec)
    assert isinstance(cluster, Cluster)
    assert len(cluster.nodes) == 2


def test_build_recurses_containers_and_passes_scalars():
    """Containers are rebuilt element-wise; plain values pass through."""
    spec = {
        "seed": 3,
        "things": [1, factory_spec("builtins:int", "7")],
        "nested": {"x": factory_spec("builtins:float", "0.5")},
    }
    out = build(spec)
    assert out == {"seed": 3, "things": [1, 7], "nested": {"x": 0.5}}


def test_build_twice_gives_equal_but_distinct_objects():
    """Every build call constructs fresh objects (no hidden sharing)."""
    spec = factory_spec(presets.hybrid_cluster, nodes=2)
    c1, c2 = build(spec), build(spec)
    assert c1 is not c2
    assert c1.describe() == c2.describe()


def test_specs_survive_pickle():
    """Specs are plain data: pickling is exact (pool transport)."""
    spec = factory_spec(
        presets.hybrid_cluster, nodes=4, cores_per_node=4, gpus_per_node=1
    )
    assert pickle.loads(pickle.dumps(spec)) == spec
