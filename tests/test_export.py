"""Tests for machine-readable exports."""

import json

import pytest

from repro import run_workflow
from repro.analysis.compare import ComparisonTable
from repro.analysis.export import (
    run_result_to_dict,
    run_result_to_json,
    table_from_csv,
    table_to_csv,
    trace_to_jsonl,
)
from repro.platform import presets
from repro.workflows.generators import montage


@pytest.fixture(scope="module")
def result():
    return run_workflow(
        montage(n_images=5, seed=1),
        presets.hybrid_cluster(nodes=2, cores_per_node=2),
        seed=1,
    )


class TestTableCsv:
    def make(self):
        t = ComparisonTable("wf")
        t.set("m", "heft", 10.0)
        t.set("m", "hdws", 8.0)
        t.set("c", "heft", 20.0)
        return t

    def test_round_trip(self):
        original = self.make()
        clone = table_from_csv(table_to_csv(original))
        assert clone.rows == original.rows
        assert clone.columns == original.columns
        assert clone.get("m", "hdws") == 8.0

    def test_missing_cells_stay_missing(self):
        clone = table_from_csv(table_to_csv(self.make()))
        with pytest.raises(KeyError):
            clone.get("c", "hdws")

    def test_file_output(self, tmp_path):
        path = str(tmp_path / "t.csv")
        table_to_csv(self.make(), path)
        with open(path) as fh:
            assert "hdws" in fh.read()

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError):
            table_from_csv("")


class TestRunResultExport:
    def test_dict_is_json_safe(self, result):
        payload = run_result_to_dict(result)
        json.dumps(payload)
        assert payload["workflow"] == result.workflow
        assert payload["summary"]["success"] == 1.0
        assert len(payload["tasks"]) == len(result.execution.records)

    def test_json_file(self, result, tmp_path):
        path = str(tmp_path / "run.json")
        run_result_to_json(result, path)
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["cluster"] == result.cluster

    def test_scheduler_name_flattened(self, result):
        assert isinstance(run_result_to_dict(result)["scheduler"], str)


class TestTraceExport:
    def test_jsonl_lines_parse(self, result):
        text = trace_to_jsonl(result.execution.trace)
        lines = text.splitlines()
        assert len(lines) == len(result.execution.trace)
        first = json.loads(lines[0])
        assert "time" in first and "kind" in first

    def test_jsonl_file(self, result, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        trace_to_jsonl(result.execution.trace, path)
        with open(path) as fh:
            assert fh.readline().startswith("{")
