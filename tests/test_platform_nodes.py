"""Tests for nodes."""

import pytest

from repro.platform.devices import DeviceClass, catalogue
from repro.platform.nodes import Node, NodeSpec


class TestNodeSpec:
    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec.of("n0", [])

    def test_nonpositive_bandwidth_rejected(self):
        cat = catalogue()
        with pytest.raises(ValueError):
            NodeSpec.of("n0", [cat["cpu-std"]], disk_bandwidth=0.0)

    def test_of_accepts_any_iterable(self):
        cat = catalogue()
        spec = NodeSpec.of("n0", iter([cat["cpu-std"]]))
        assert len(spec.device_specs) == 1


class TestNode:
    def make(self):
        cat = catalogue()
        return Node(NodeSpec.of(
            "n0", [cat["cpu-std"], cat["cpu-std"], cat["gpu-std"]]
        ))

    def test_device_instantiation(self):
        node = self.make()
        assert len(node.devices) == 3
        assert node.name == "n0"

    def test_devices_of_class(self):
        node = self.make()
        assert len(node.devices_of_class(DeviceClass.CPU)) == 2
        assert len(node.devices_of_class(DeviceClass.GPU)) == 1
        assert node.devices_of_class(DeviceClass.FPGA) == []

    def test_classes_in_install_order(self):
        node = self.make()
        assert node.classes() == [DeviceClass.CPU, DeviceClass.GPU]

    def test_device_lookup_by_uid(self):
        node = self.make()
        uid = node.devices[0].uid
        assert node.device(uid) is node.devices[0]

    def test_device_lookup_missing(self):
        with pytest.raises(KeyError):
            self.make().device("nope")

    def test_reset_propagates(self):
        node = self.make()
        node.devices[0].occupy(0, 0.0, 1.0)
        node.reset()
        assert node.devices[0].busy_time() == 0.0

    def test_bandwidth_shortcuts(self):
        node = self.make()
        assert node.disk_bandwidth == node.spec.disk_bandwidth
        assert node.nic_bandwidth == node.spec.nic_bandwidth
