"""Regression: suite seeds are a property of the suite name, not position.

``suite_workflows`` used to derive each suite's generator seed from its
position *in the requested subset* (``enumerate(names)``), so asking for
``("ligo",)`` built a different LIGO than asking for all five suites —
and two experiments sharing a seed could silently disagree about what
"the LIGO workflow" was.  Seeds now come from the canonical offset table
keyed by name.
"""

from __future__ import annotations

from repro.experiments.common import SUITE_SEED_OFFSETS, SUITES, suite_workflows
from repro.workflows.generators import SCIENTIFIC_SUITES
from repro.workflows.serialize import workflow_to_dict


def _doc(wf):
    return workflow_to_dict(wf)


def test_subset_matches_full_call():
    """Requesting one suite yields the workflow the full call yields."""
    full = suite_workflows(size=20, seed=3)
    for name in SUITES:
        alone = suite_workflows(size=20, seed=3, names=(name,))
        assert _doc(alone[name]) == _doc(full[name]), (
            f"{name} built alone differs from {name} built with all suites"
        )


def test_request_order_is_irrelevant():
    """Permuting the names argument never changes any workflow."""
    forward = suite_workflows(size=20, seed=3, names=SUITES)
    backward = suite_workflows(size=20, seed=3, names=tuple(reversed(SUITES)))
    for name in SUITES:
        assert _doc(forward[name]) == _doc(backward[name])


def test_distinct_suites_get_distinct_seeds():
    """Offsets are injective: no two suites share a generator seed."""
    offsets = [SUITE_SEED_OFFSETS[name] for name in SCIENTIFIC_SUITES]
    assert len(set(offsets)) == len(offsets)


def test_offsets_cover_every_known_suite():
    """Every registered suite has a canonical offset (future-proofing)."""
    assert set(SCIENTIFIC_SUITES) <= set(SUITE_SEED_OFFSETS)


def test_canonical_block_keeps_historical_offsets():
    """The five canonical suites keep their original 0..4 offsets, so the
    full-call workflows (and every golden fixture derived from them)
    are unchanged by the fix."""
    assert [SUITE_SEED_OFFSETS[n] for n in SUITES] == [0, 1, 2, 3, 4]
