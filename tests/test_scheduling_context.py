"""Tests for the shared scheduling context."""

import numpy as np
import pytest

from repro.platform import presets
from repro.platform.devices import DeviceClass
from repro.schedulers.base import SchedulingContext, SchedulingError
from repro.workflows.generators import montage
from repro.workflows.graph import Workflow
from repro.workflows.task import DataFile, Task, cpu_task, gpu_task


class TestEligibility:
    def test_memory_filters_devices(self, hybrid_cluster):
        wf = Workflow("w")
        wf.add_file(DataFile("o", 1.0))
        wf.add_task(cpu_task("big", 1.0, outputs=("o",), memory_gb=48.0))
        wf.add_task(cpu_task("c", 1.0, inputs=("o",)))
        ctx = SchedulingContext(wf, hybrid_cluster)
        # cpu-std has 64 GB, gpu-std has 24 GB: GPUs excluded by memory
        # (CPU-only task anyway) — now force a GPU task needing 48 GB:
        wf2 = Workflow("w2")
        wf2.add_file(DataFile("o", 1.0))
        wf2.add_task(gpu_task("big", 1.0, outputs=("o",), memory_gb=48.0))
        wf2.add_task(cpu_task("c", 1.0, inputs=("o",)))
        ctx2 = SchedulingContext(wf2, hybrid_cluster)
        classes = {d.device_class for d in ctx2.eligible_devices("big")}
        assert classes == {DeviceClass.CPU}

    def test_no_eligible_device_raises(self, cpu_cluster):
        wf = Workflow("w")
        wf.add_file(DataFile("o", 1.0))
        wf.add_task(Task("gpuonly", 1.0,
                         affinity={DeviceClass.CPU: 0.0, DeviceClass.GPU: 5.0},
                         outputs=("o",)))
        wf.add_task(cpu_task("c", 1.0, inputs=("o",)))
        with pytest.raises(SchedulingError):
            SchedulingContext(wf, cpu_cluster)

    def test_failed_devices_excluded(self, small_montage, hybrid_cluster):
        hybrid_cluster.reset()
        hybrid_cluster.devices[0].failed = True
        ctx = SchedulingContext(small_montage, hybrid_cluster)
        uids = {d.uid for d in ctx.eligible_devices("mConcatFit")}
        assert hybrid_cluster.devices[0].uid not in uids
        hybrid_cluster.reset()


class TestEstimates:
    def test_exec_time_matches_model(self, montage_context, hybrid_cluster):
        ctx = montage_context
        wf = ctx.workflow
        dev = hybrid_cluster.devices[0]
        model = hybrid_cluster.execution_model
        t = next(iter(wf.tasks))
        assert ctx.exec_time(t, dev.uid) == pytest.approx(
            model.estimate(wf.tasks[t], dev.spec)
        )

    def test_exec_time_unknown_device_raises(self, montage_context):
        with pytest.raises(SchedulingError):
            montage_context.exec_time("mConcatFit", "nope")

    def test_best_leq_mean(self, montage_context):
        for t in montage_context.workflow.tasks:
            assert montage_context.best_exec(t) <= montage_context.mean_exec(t) + 1e-12

    def test_best_device_is_argmin(self, montage_context):
        for t in list(montage_context.workflow.tasks)[:5]:
            d = montage_context.best_device(t)
            assert montage_context.exec_time(t, d.uid) == pytest.approx(
                montage_context.best_exec(t)
            )

    def test_comm_time_zero_same_node(self, montage_context, hybrid_cluster):
        ctx = montage_context
        wf = ctx.workflow
        # pick a real edge
        src = "mProject_0"
        dst = wf.successors(src)[0]
        node0 = hybrid_cluster.nodes[0]
        d1, d2 = node0.devices[0], node0.devices[1]
        assert ctx.comm_time(src, dst, d1.uid, d2.uid) == 0.0

    def test_comm_time_positive_cross_node(self, montage_context, hybrid_cluster):
        ctx = montage_context
        wf = ctx.workflow
        src = "mProject_0"
        dst = wf.successors(src)[0]
        d1 = hybrid_cluster.nodes[0].devices[0]
        d2 = hybrid_cluster.nodes[1].devices[0]
        assert ctx.comm_time(src, dst, d1.uid, d2.uid) > 0.0

    def test_mean_comm_zero_for_non_edge(self, montage_context):
        assert montage_context.mean_comm("mConcatFit", "mProject_0") == 0.0

    def test_staging_time_counts_initial_inputs_only(
        self, montage_context, hybrid_cluster
    ):
        ctx = montage_context
        dev = hybrid_cluster.devices[0]
        # mProject reads a raw image + header (both initial)
        assert ctx.staging_time("mProject_0", dev.uid) > 0.0
        # mConcatFit reads only produced diffs
        assert ctx.staging_time("mConcatFit", dev.uid) == 0.0

    def test_single_node_cluster_mean_comm_zero(self, small_montage):
        ws = presets.single_node_workstation()
        ctx = SchedulingContext(small_montage, ws)
        src = "mProject_0"
        dst = small_montage.successors(src)[0]
        assert ctx.mean_comm(src, dst) == 0.0


class TestRanks:
    def test_upward_rank_parent_exceeds_child(self, montage_context):
        ranks = montage_context.upward_ranks()
        wf = montage_context.workflow
        for name in wf.tasks:
            for child in wf.successors(name):
                assert ranks[name] > ranks[child]

    def test_downward_rank_entry_zero(self, montage_context):
        down = montage_context.downward_ranks()
        for entry in montage_context.workflow.entry_tasks():
            assert down[entry] == 0.0

    def test_best_ranks_leq_mean_ranks(self, montage_context):
        mean_ranks = montage_context.upward_ranks(use_best=False)
        best_ranks = montage_context.upward_ranks(use_best=True)
        for t in montage_context.workflow.tasks:
            assert best_ranks[t] <= mean_ranks[t] + 1e-9


class TestEstimateError:
    def test_error_factor_is_per_task(self, small_montage, hybrid_cluster):
        rng = np.random.default_rng(0)
        ctx = SchedulingContext(
            small_montage, hybrid_cluster, estimate_error_cv=1.0, rng=rng
        )
        clean = SchedulingContext(small_montage, hybrid_cluster)
        # same multiplicative factor across all devices of one task
        t = "mProject_0"
        factors = {
            d.uid: ctx.exec_time(t, d.uid) / clean.exec_time(t, d.uid)
            for d in ctx.eligible_devices(t)
        }
        vals = list(factors.values())
        assert max(vals) == pytest.approx(min(vals))

    def test_error_reproducible_with_same_rng_seed(
        self, small_montage, hybrid_cluster
    ):
        c1 = SchedulingContext(
            small_montage, hybrid_cluster, estimate_error_cv=0.5,
            rng=np.random.default_rng(5),
        )
        c2 = SchedulingContext(
            small_montage, hybrid_cluster, estimate_error_cv=0.5,
            rng=np.random.default_rng(5),
        )
        t = "mConcatFit"
        d = c1.eligible_devices(t)[0]
        assert c1.exec_time(t, d.uid) == c2.exec_time(t, d.uid)
