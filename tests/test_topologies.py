"""Tests for structured interconnect topologies."""

import pytest

from repro.platform.topologies import (
    TOPOLOGIES,
    by_name,
    dragonfly,
    fat_tree,
    torus_2d,
)

NAMES8 = [f"n{i}" for i in range(8)]


class TestFatTree:
    def test_intra_pod_cheaper_than_inter_pod(self):
        net = fat_tree(NAMES8, pod_size=4)
        intra = net.nominal_time("n0", "n1", 100.0)
        inter = net.nominal_time("n0", "n4", 100.0)
        assert intra < inter

    def test_oversubscription_tapers_bandwidth(self):
        net = fat_tree(NAMES8, pod_size=4, edge_bandwidth=1000.0,
                       oversubscription=4.0)
        assert net.link("n0", "n1").bandwidth == 1000.0
        assert net.link("n0", "n4").bandwidth == 250.0

    def test_hop_latency(self):
        net = fat_tree(NAMES8, pod_size=4, per_hop_latency=1e-3)
        assert net.link("n0", "n1").latency == pytest.approx(2e-3)
        assert net.link("n0", "n4").latency == pytest.approx(4e-3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            fat_tree(NAMES8, pod_size=0)
        with pytest.raises(ValueError):
            fat_tree(NAMES8, oversubscription=0.5)


class TestTorus:
    def test_neighbour_vs_diagonal(self):
        net = torus_2d([f"n{i}" for i in range(16)], width=4,
                       per_hop_latency=1e-3)
        # (0,0) -> (1,0): 1 hop.  (0,0) -> (2,2): 4 hops.
        assert net.link("n0", "n1").latency == pytest.approx(1e-3)
        assert net.link("n0", "n10").latency == pytest.approx(4e-3)

    def test_wraparound_shortens_paths(self):
        net = torus_2d([f"n{i}" for i in range(16)], width=4,
                       per_hop_latency=1e-3)
        # (0,0) -> (3,0) wraps: 1 hop, not 3.
        assert net.link("n0", "n3").latency == pytest.approx(1e-3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            torus_2d([])


class TestDragonfly:
    def test_local_fast_global_slow(self):
        net = dragonfly(NAMES8, group_size=4, local_bandwidth=2000.0,
                        global_bandwidth=500.0, per_hop_latency=1e-3)
        local = net.link("n0", "n1")
        glob = net.link("n0", "n4")
        assert local.bandwidth == 2000.0
        assert glob.bandwidth == 500.0
        assert local.latency == pytest.approx(1e-3)
        assert glob.latency == pytest.approx(3e-3)

    def test_invalid_group(self):
        with pytest.raises(ValueError):
            dragonfly(NAMES8, group_size=0)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_every_topology_builds_full_mesh_of_links(self, name):
        net = by_name(name, NAMES8)
        for a in NAMES8:
            for b in NAMES8:
                if a != b:
                    assert net.has_link(a, b)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            by_name("moebius", NAMES8)

    def test_usable_in_cluster(self):
        from repro import run_workflow
        from repro.platform.cluster import Cluster
        from repro.platform.devices import catalogue
        from repro.platform.nodes import NodeSpec
        from repro.workflows.generators import montage

        cat = catalogue()
        specs = [NodeSpec.of(n, [cat["cpu-std"], cat["gpu-std"]])
                 for n in NAMES8]
        cluster = Cluster("ft", specs,
                          interconnect=fat_tree(NAMES8, pod_size=4))
        result = run_workflow(montage(size=30, seed=1), cluster, seed=1)
        assert result.success
