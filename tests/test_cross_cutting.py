"""Cross-cutting behaviours: DVFS end-to-end, switched fabrics, traces."""

import pytest

from repro import run_workflow
from repro.energy.governor import DeepSleepGovernor
from repro.platform import presets
from repro.platform.cluster import Cluster
from repro.platform.devices import catalogue
from repro.platform.interconnect import Interconnect
from repro.platform.nodes import NodeSpec
from repro.schedulers.energy_aware import EnergyAwareHeftScheduler
from repro.workflows.generators import cybershake, montage


class TestDvfsEndToEnd:
    def test_dvfs_choices_flow_into_measured_energy(self):
        """The executor must honour the planner's DVFS states: a green
        alpha yields measurably lower busy energy than alpha=1 on the same
        placements' platform."""
        wf = montage(n_images=8, seed=3)
        gov = DeepSleepGovernor(threshold_s=0.5)

        def run(alpha):
            cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2,
                                             dvfs=True)
            return run_workflow(
                wf, cluster, scheduler=EnergyAwareHeftScheduler(alpha=alpha),
                seed=1, governor=gov,
            )

        fast = run(1.0)
        green = run(0.05)
        assert green.energy.busy_joules < fast.energy.busy_joules
        assert green.makespan >= fast.makespan

    def test_dvfs_slows_execution_observably(self):
        wf = montage(n_images=8, seed=3)
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2, dvfs=True)
        green = run_workflow(
            wf, cluster, scheduler=EnergyAwareHeftScheduler(alpha=0.0),
            seed=1,
        )
        assert green.plan.dvfs_choice  # some task was slowed
        # The executed duration of a slowed task exceeds its full-speed
        # estimate.
        name = next(iter(green.plan.dvfs_choice))
        rec = green.execution.records[name]
        task = wf.tasks[name]
        device = cluster.device(rec.device)
        est = cluster.execution_model.estimate(task, device.spec)
        assert rec.finish - rec.start > est * 1.05


class TestSwitchedFabric:
    def test_core_backplane_contention_slows_runs(self):
        cat = catalogue()
        names = [f"n{i}" for i in range(4)]
        specs = [NodeSpec.of(n, [cat["cpu-std"], cat["gpu-std"]])
                 for n in names]
        wf = cybershake(n_variations=8, seed=1)

        fast_net = Cluster("mesh", specs)
        fast = run_workflow(wf, fast_net, seed=1)

        # A severely undersized backplane must cost wall-clock.
        slow_specs = [NodeSpec.of(n, [cat["cpu-std"], cat["gpu-std"]])
                      for n in names]
        slow_net = Cluster(
            "switched", slow_specs,
            interconnect=Interconnect.switched(
                names, edge_bandwidth=1250.0, core_bandwidth=50.0
            ),
            switched=True,
        )
        slow = run_workflow(wf, slow_net, seed=1)
        assert slow.success
        assert slow.makespan >= fast.makespan

    def test_core_link_carries_traffic(self):
        cat = catalogue()
        names = ["a", "b"]
        specs = [NodeSpec.of(n, [cat["cpu-std"]]) for n in names]
        cluster = Cluster(
            "sw", specs,
            interconnect=Interconnect.switched(names),
            switched=True,
        )
        cluster.reserve_transfer("a", "b", 0.0, 500.0)
        core = cluster.interconnect.core_link()
        assert core.bytes_carried_mb == 500.0


class TestTraceCompleteness:
    def test_every_task_start_has_terminal_record(self):
        from repro.faults.models import FaultModel
        from repro.faults.recovery import RecoveryPolicy

        wf = cybershake(n_variations=6, seed=1).scaled(2.0)
        cluster = presets.hybrid_cluster(nodes=2)
        result = run_workflow(
            wf, cluster, seed=4,
            fault_model=FaultModel(task_fault_rate=0.2),
            recovery=RecoveryPolicy.replicated(2, retries=20),
        )
        assert result.success
        trace = result.execution.trace
        starts = len(trace.of_kind("task.start"))
        terminals = (
            len(trace.of_kind("task.finish"))
            + len(trace.of_kind("fault.task"))
            + len(trace.of_kind("task.preempt"))
        )
        # Every started execution ends in exactly one of the three ways.
        assert starts <= terminals
        # Preempted clones may never have started executing (still
        # staging), hence <= rather than ==.

    def test_stage_records_precede_starts(self):
        wf = montage(n_images=5, seed=1)
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
        result = run_workflow(wf, cluster, seed=1)
        trace = result.execution.trace
        first_stage = trace.first("task.stage")
        first_start = trace.first("task.start")
        assert first_stage.time <= first_start.time
