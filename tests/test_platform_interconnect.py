"""Tests for the interconnect model."""

import pytest

from repro.platform.interconnect import Interconnect, Link


class TestLink:
    def test_nominal_time(self):
        link = Link("a", "b", bandwidth=100.0, latency=0.5)
        assert link.nominal_time(50.0) == pytest.approx(0.5 + 0.5)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth=0.0, latency=0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "b", bandwidth=1.0, latency=-1.0)

    def test_reserve_serializes(self):
        link = Link("a", "b", bandwidth=100.0, latency=0.0)
        s1, e1 = link.reserve(0.0, 100.0)   # 1s transfer
        s2, e2 = link.reserve(0.0, 100.0)   # queued behind the first
        assert (s1, e1) == (0.0, 1.0)
        assert (s2, e2) == (1.0, 2.0)
        assert link.transfers == 2
        assert link.bytes_carried_mb == 200.0

    def test_reserve_after_gap_starts_at_earliest(self):
        link = Link("a", "b", bandwidth=100.0, latency=0.0)
        link.reserve(0.0, 100.0)
        s, _e = link.reserve(5.0, 100.0)
        assert s == 5.0

    def test_reset(self):
        link = Link("a", "b", bandwidth=100.0, latency=0.0)
        link.reserve(0.0, 100.0)
        link.reset()
        assert link.busy_until == 0.0
        assert link.transfers == 0


class TestInterconnect:
    def test_uniform_full_mesh(self):
        net = Interconnect.uniform(["a", "b", "c"], bandwidth=10.0)
        assert net.has_link("a", "b")
        assert net.has_link("c", "a")
        assert not net.has_link("a", "a")
        assert len(net.links) == 6

    def test_missing_link_raises(self):
        net = Interconnect()
        with pytest.raises(KeyError):
            net.link("a", "b")

    def test_nominal_time_same_node_free(self):
        net = Interconnect.uniform(["a", "b"])
        assert net.nominal_time("a", "a", 100.0) == 0.0

    def test_reserve_same_node_instant(self):
        net = Interconnect.uniform(["a", "b"])
        assert net.reserve("a", "a", 3.0, 100.0) == (3.0, 3.0)

    def test_total_traffic(self):
        net = Interconnect.uniform(["a", "b"], bandwidth=100.0, latency=0.0)
        net.reserve("a", "b", 0.0, 10.0)
        net.reserve("b", "a", 0.0, 20.0)
        assert net.total_traffic_mb() == 30.0

    def test_switched_has_core_link(self):
        net = Interconnect.switched(["a", "b"], core_bandwidth=500.0)
        core = net.core_link()
        assert core is not None
        assert core.bandwidth == 500.0
        assert Interconnect.uniform(["a"]).core_link() is None

    def test_reserve_switched_queues_on_core(self):
        # Core slower than edges: the backplane must become the bottleneck.
        net = Interconnect.switched(
            ["a", "b", "c"], edge_bandwidth=1000.0, core_bandwidth=100.0,
            latency=0.0,
        )
        _s1, e1 = net.reserve_switched("a", "b", 0.0, 100.0)
        _s2, e2 = net.reserve_switched("c", "b", 0.0, 100.0)
        # each needs 1s of core; second must finish around t=2
        assert e1 >= 1.0
        assert e2 >= 2.0

    def test_reset_clears_all_links(self):
        net = Interconnect.uniform(["a", "b"], bandwidth=100.0)
        net.reserve("a", "b", 0.0, 100.0)
        net.reset()
        assert net.total_traffic_mb() == 0.0
