"""On-disk result cache: round trips, corruption tolerance, accounting."""

from __future__ import annotations

import json
import os

import pytest

from repro.runner.cache import ResultCache

KEY = "ab" + "0" * 62
RECORD = {"makespan": 1.5, "success": True}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def test_get_on_empty_cache_is_a_miss(cache):
    """Missing entries read as None and count as misses."""
    assert cache.get(KEY) is None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_put_then_get_round_trips(cache):
    """A stored record comes back exactly and counts as a hit."""
    cache.put(KEY, RECORD)
    assert cache.get(KEY) == RECORD
    assert cache.stats.puts == 1
    assert cache.stats.hits == 1


def test_entries_are_sharded_two_level(cache):
    """Entry files live under a two-hex-char shard directory."""
    cache.put(KEY, RECORD)
    assert os.path.exists(os.path.join(cache.root, "ab", f"{KEY}.json"))


def test_short_key_is_rejected(cache):
    """Keys must be long enough to shard."""
    with pytest.raises(ValueError):
        cache.path_for("ab")


def test_corrupt_entry_reads_as_miss(cache):
    """Truncated JSON is a miss + error, never an exception."""
    cache.put(KEY, RECORD)
    with open(cache.path_for(KEY), "w", encoding="utf-8") as fh:
        fh.write('{"key": "ab')  # truncated
    assert cache.get(KEY) is None
    assert cache.stats.errors == 1


def test_entry_with_wrong_embedded_key_reads_as_miss(cache):
    """An entry whose embedded key mismatches its path is rejected."""
    cache.put(KEY, RECORD)
    with open(cache.path_for(KEY), "w", encoding="utf-8") as fh:
        json.dump({"key": "cd" + "0" * 62, "record": RECORD}, fh)
    assert cache.get(KEY) is None
    assert cache.stats.errors == 1


def test_overwrite_replaces_entry(cache):
    """Re-putting a key atomically replaces the stored record."""
    cache.put(KEY, RECORD)
    cache.put(KEY, {"makespan": 9.0, "success": False})
    assert cache.get(KEY)["makespan"] == 9.0
    assert len(cache) == 1


def test_len_counts_entries_not_temp_files(cache):
    """__len__ ignores stray temp files from interrupted writes."""
    cache.put(KEY, RECORD)
    cache.put("cd" + "1" * 62, RECORD)
    shard = os.path.join(cache.root, "ab")
    with open(os.path.join(shard, ".tmp-zzz.json"), "w") as fh:
        fh.write("{}")
    assert len(cache) == 2


def test_clear_removes_everything(cache):
    """clear() empties the store and reports the count."""
    cache.put(KEY, RECORD)
    cache.put("cd" + "1" * 62, RECORD)
    assert cache.clear() >= 2
    assert len(cache) == 0
    assert cache.get(KEY) is None


def test_len_of_nonexistent_root_is_zero(cache):
    """A cache that never wrote anything has no directory and length 0."""
    assert len(cache) == 0
    assert cache.clear() == 0
