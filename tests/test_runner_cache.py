"""Shard-indexed result cache: round trips, durability, accounting, GC."""

from __future__ import annotations

import json
import os

import pytest

from repro.runner.cache import INDEX_SCHEMA, ResultCache

KEY = "ab" + "0" * 62
KEY2 = "cd" + "1" * 62
RECORD = {"makespan": 1.5, "success": True}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def _corrupt_entry(cache: ResultCache, key: str) -> None:
    """Scribble over the packed bytes of one entry on disk."""
    cache.sync()
    pack_rel, offset, length = cache._load_index()[key]
    path = os.path.join(cache.root, pack_rel)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(b"x" * min(length, 8))


def test_get_on_empty_cache_is_a_miss(cache):
    """Missing entries read as None and count as misses."""
    assert cache.get(KEY) is None
    assert cache.stats.misses == 1
    assert cache.stats.hits == 0


def test_put_then_get_round_trips(cache):
    """A stored record comes back exactly and counts as a hit."""
    cache.put(KEY, RECORD)
    assert cache.get(KEY) == RECORD
    assert cache.stats.puts == 1
    assert cache.stats.hits == 1


def test_entries_are_packed_and_indexed(cache):
    """Records append to a pack file; sync writes the manifest."""
    cache.put(KEY, RECORD)
    cache.sync()
    packs = os.listdir(os.path.join(cache.root, "packs"))
    assert len(packs) == 1 and packs[0].startswith("pack-")
    with open(cache.index_path, encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh]
    assert lines[0] == {"schema": INDEX_SCHEMA}
    assert lines[1]["k"] == KEY
    assert lines[1]["p"] == os.path.join("packs", packs[0])


def test_short_key_is_rejected(cache):
    """Keys must be long enough to shard (legacy path contract)."""
    with pytest.raises(ValueError):
        cache.path_for("ab")


def test_cache_survives_reopen(cache):
    """A second process (fresh instance) reads synced entries."""
    cache.put(KEY, RECORD)
    cache.close()
    again = ResultCache(cache.root)
    assert again.get(KEY) == RECORD
    assert len(again) == 1


def test_corrupt_entry_reads_as_miss(cache):
    """Scribbled pack bytes are a miss + error, never an exception."""
    cache.put(KEY, RECORD)
    _corrupt_entry(cache, KEY)
    again = ResultCache(cache.root)
    assert again.get(KEY) is None
    assert again.stats.errors == 1
    assert again.stats.misses == 1


def test_corrupt_manifest_line_is_skipped(cache):
    """A truncated manifest line (crashed writer) loses only that entry."""
    cache.put(KEY, RECORD)
    cache.put(KEY2, RECORD)
    cache.close()
    with open(cache.index_path, "a", encoding="utf-8") as fh:
        fh.write('{"k": "ef')  # torn final append
    again = ResultCache(cache.root)
    assert again.get(KEY) == RECORD
    assert again.get(KEY2) == RECORD
    assert again.stats.errors == 1  # the torn line


def test_entry_with_wrong_embedded_key_reads_as_miss(cache):
    """An entry whose embedded key mismatches its manifest key is rejected."""
    cache.put(KEY, RECORD)
    cache.sync()
    pack_rel, offset, length = cache._load_index()[KEY]
    # Point a different key's manifest line at KEY's bytes.
    with open(cache.index_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(
            {"k": KEY2, "p": pack_rel, "o": offset, "n": length}
        ) + "\n")
    cache.close()
    again = ResultCache(cache.root)
    assert again.get(KEY2) is None
    assert again.stats.errors == 1


def test_overwrite_replaces_entry(cache):
    """Re-putting a key replaces the stored record (last write wins)."""
    cache.put(KEY, RECORD)
    cache.put(KEY, {"makespan": 9.0, "success": False})
    assert cache.get(KEY)["makespan"] == 9.0
    assert len(cache) == 1
    # ... including across a reopen (manifest order decides).
    cache.close()
    assert ResultCache(cache.root).get(KEY)["makespan"] == 9.0


def test_get_many_batches_lookups(cache):
    """get_many returns every hit and counts stats per unique key."""
    cache.put(KEY, RECORD)
    cache.put(KEY2, {"makespan": 2.0})
    missing = "ef" + "2" * 62
    out = cache.get_many([KEY, KEY2, KEY, missing])
    assert out == {KEY: RECORD, KEY2: {"makespan": 2.0}}
    assert cache.stats.hits == 2
    assert cache.stats.misses == 1


def test_len_is_manifest_count_not_a_walk(cache):
    """__len__ comes from the index; stray temp files don't count."""
    cache.put(KEY, RECORD)
    cache.put(KEY2, RECORD)
    os.makedirs(cache.packs_path, exist_ok=True)
    with open(os.path.join(cache.packs_path, ".tmp-zzz.jsonl"), "w") as fh:
        fh.write("{}")
    assert len(cache) == 2


def test_legacy_per_file_entries_remain_readable(cache):
    """Pre-pack ab/<key>.json entries hit on index miss and count in len."""
    path = cache.path_for(KEY)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"key": KEY, "record": RECORD}, fh)
    assert cache.get(KEY) == RECORD
    assert cache.stats.hits == 1
    assert len(cache) == 1
    assert cache.get_many([KEY]) == {KEY: RECORD}


def test_clear_removes_everything_including_orphans(cache):
    """clear() empties packs, manifest, legacy entries and .tmp-* litter."""
    cache.put(KEY, RECORD)
    legacy = cache.path_for(KEY2)
    os.makedirs(os.path.dirname(legacy), exist_ok=True)
    with open(legacy, "w", encoding="utf-8") as fh:
        json.dump({"key": KEY2, "record": RECORD}, fh)
    orphan = os.path.join(os.path.dirname(legacy), ".tmp-dead.json")
    with open(orphan, "w") as fh:
        fh.write("{")
    assert cache.clear() == 2
    assert len(cache) == 0
    assert cache.get(KEY) is None
    assert not os.path.exists(orphan)
    assert not os.path.exists(cache.index_path)


def test_gc_tmp_removes_stale_temp_files(cache):
    """gc_tmp() reclaims crashed writers' temp files, nothing else."""
    cache.put(KEY, RECORD)
    cache.sync()
    stray = os.path.join(cache.root, ".tmp-index.jsonl")
    with open(stray, "w") as fh:
        fh.write("{}")
    assert cache.gc_tmp() == 1
    assert not os.path.exists(stray)
    assert cache.get(KEY) == RECORD


def test_evict_to_drops_oldest_packs(tmp_path):
    """Size-bounded eviction removes whole packs and rewrites the manifest."""
    cache = ResultCache(str(tmp_path / "cache"), pack_max_bytes=1)
    # pack_max_bytes=1 rotates after every put: one pack per entry.
    keys = [f"{i:02x}" + "f" * 62 for i in range(4)]
    for i, key in enumerate(keys):
        cache.put(key, {"makespan": float(i)})
    cache.close()
    assert len(os.listdir(cache.packs_path)) == 4
    evicted = cache.evict_to(0)
    assert evicted == 4
    assert len(cache) == 0
    # Manifest was rewritten, not deleted: reopen sees an empty cache.
    again = ResultCache(cache.root)
    assert len(again) == 0


def test_evict_to_partial_keeps_survivors_readable(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"), pack_max_bytes=1)
    keys = [f"{i:02x}" + "e" * 62 for i in range(4)]
    for i, key in enumerate(keys):
        cache.put(key, {"makespan": float(i)})
    cache.close()
    sizes = sorted(
        os.path.getsize(os.path.join(cache.packs_path, f))
        for f in os.listdir(cache.packs_path)
    )
    evicted = cache.evict_to(sum(sizes[:2]))
    assert evicted == 2
    survivors = ResultCache(cache.root)
    assert len(survivors) == 2
    remaining = [k for k in keys if survivors.get(k) is not None]
    assert len(remaining) == 2


def test_sync_every_checkpoints_automatically(tmp_path):
    """Every sync_every-th put flushes the manifest without an explicit sync."""
    cache = ResultCache(str(tmp_path / "cache"), sync_every=2)
    cache.put(KEY, RECORD)
    assert not os.path.exists(cache.index_path)  # pending
    cache.put(KEY2, RECORD)
    fresh = ResultCache(cache.root)  # simulated crash: no close()
    assert len(fresh) == 2
    assert fresh.get(KEY) == RECORD


def test_unsynced_entries_lost_on_crash_simply_re_simulate(tmp_path):
    """Entries pending since the last sync read as misses after a crash."""
    cache = ResultCache(str(tmp_path / "cache"), sync_every=100)
    cache.put(KEY, RECORD)
    fresh = ResultCache(cache.root)  # crash before any sync
    assert fresh.get(KEY) is None
    assert fresh.stats.misses == 1


def test_len_of_nonexistent_root_is_zero(cache):
    """A cache that never wrote anything has no directory and length 0."""
    assert len(cache) == 0
    assert cache.clear() == 0
