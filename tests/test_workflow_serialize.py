"""Tests for workflow JSON serialization."""

import pytest

from repro.workflows.generators import montage, sipht
from repro.workflows.graph import Workflow
from repro.workflows.serialize import (
    load_workflow,
    save_workflow,
    workflow_from_dict,
    workflow_from_json,
    workflow_to_dict,
    workflow_to_json,
)
from repro.workflows.task import DataFile, cpu_task


class TestRoundTrip:
    @pytest.mark.parametrize("gen", [montage, sipht])
    def test_generator_round_trip(self, gen):
        wf = gen(size=20, seed=5)
        clone = workflow_from_json(workflow_to_json(wf))
        assert clone.name == wf.name
        assert set(clone.tasks) == set(wf.tasks)
        assert set(clone.files) == set(wf.files)
        for name, task in wf.tasks.items():
            ct = clone.tasks[name]
            assert ct.work == task.work
            assert ct.affinity == task.affinity
            assert ct.inputs == task.inputs
            assert ct.outputs == task.outputs
            assert ct.category == task.category
        # derived structure identical
        assert clone.graph().edges == wf.graph().edges

    def test_control_edges_round_trip(self):
        wf = Workflow("w")
        wf.add_file(DataFile("f", 1.0))
        wf.add_task(cpu_task("a", 1.0, outputs=("f",)))
        wf.add_task(cpu_task("b", 1.0, inputs=("f",)))
        wf.add_task(cpu_task("c", 1.0))
        wf.add_control_edge("b", "c")
        clone = workflow_from_json(workflow_to_json(wf))
        assert "b" in clone.predecessors("c")

    def test_location_round_trips(self):
        wf = Workflow("w")
        wf.add_file(DataFile("cap", 5.0, initial=True, location="edge3"))
        wf.add_task(cpu_task("t", 1.0, inputs=("cap",)))
        clone = workflow_from_json(workflow_to_json(wf))
        assert clone.files["cap"].location == "edge3"

    def test_file_round_trip(self, tmp_path):
        wf = montage(size=15, seed=1)
        path = str(tmp_path / "wf.json")
        save_workflow(wf, path)
        clone = load_workflow(path)
        assert clone.n_tasks == wf.n_tasks

    def test_missing_field_raises_value_error(self):
        with pytest.raises(ValueError):
            workflow_from_dict({"files": []})

    def test_dict_form_is_json_safe(self):
        import json

        payload = workflow_to_dict(montage(size=10, seed=0))
        json.dumps(payload)  # must not raise
