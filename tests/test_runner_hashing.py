"""Cache-key properties: stable across restarts, discriminating on inputs."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.experiments.common import DEFAULT_CLUSTER_SPEC, make_job
from repro.runner.hashing import cache_key, canonical_json, digest
from repro.workflows.generators import montage
from repro.workflows.serialize import workflow_from_dict, workflow_to_dict


def _job(**config):
    wf = montage(size=15, seed=3)
    config.setdefault("seed", 3)
    config.setdefault("noise_cv", 0.1)
    return make_job(wf, DEFAULT_CLUSTER_SPEC, scheduler="heft", **config)


# ---------------------------------------------------------------------- #
# canonical JSON                                                         #
# ---------------------------------------------------------------------- #

def test_canonical_json_is_insensitive_to_dict_order():
    """Two dicts with different insertion orders hash identically."""
    a = {"b": 1, "a": {"y": 2, "x": 3}}
    b = {"a": {"x": 3, "y": 2}, "b": 1}
    assert canonical_json(a) == canonical_json(b)
    assert digest(a) == digest(b)


def test_canonical_json_distinguishes_int_from_float():
    """1 and 1.0 address different entries (they can simulate differently)."""
    assert canonical_json({"x": 1}) != canonical_json({"x": 1.0})


def test_canonical_json_floats_are_exact():
    """Floats round-trip by repr: no precision is shaved off the key."""
    value = 0.1 + 0.2  # 0.30000000000000004
    text = canonical_json({"x": value})
    assert json.loads(text)["x"] == value


def test_canonical_json_normalizes_tuples_to_lists():
    """(1, 2) and [1, 2] describe the same cell."""
    assert canonical_json((1, 2)) == canonical_json([1, 2])


def test_canonical_json_rejects_nan_and_objects():
    """NaN and live objects cannot silently enter a key."""
    with pytest.raises(ValueError):
        canonical_json(float("nan"))
    with pytest.raises(TypeError):
        canonical_json(object())


# ---------------------------------------------------------------------- #
# cache_key discrimination                                               #
# ---------------------------------------------------------------------- #

def test_key_changes_with_seed():
    """Different seeds are different cells."""
    assert cache_key(_job(seed=1)) != cache_key(_job(seed=2))


def test_key_changes_with_config_param():
    """Any run-config change (noise here) re-addresses the cell."""
    assert cache_key(_job(noise_cv=0.1)) != cache_key(_job(noise_cv=0.2))


def test_key_changes_with_scheduler():
    """Scheduler name is part of the key."""
    wf = montage(size=15, seed=3)
    a = make_job(wf, DEFAULT_CLUSTER_SPEC, scheduler="heft", seed=3)
    b = make_job(wf, DEFAULT_CLUSTER_SPEC, scheduler="peft", seed=3)
    assert cache_key(a) != cache_key(b)


def test_key_changes_with_workflow():
    """A different workflow document is a different cell."""
    a = make_job(montage(size=15, seed=3), DEFAULT_CLUSTER_SPEC, seed=3)
    b = make_job(montage(size=15, seed=4), DEFAULT_CLUSTER_SPEC, seed=3)
    assert cache_key(a) != cache_key(b)


def test_label_is_not_part_of_the_key():
    """Labels are diagnostics; renaming a cell must not re-simulate it."""
    wf = montage(size=15, seed=3)
    a = make_job(wf, DEFAULT_CLUSTER_SPEC, seed=3, label="one")
    b = make_job(wf, DEFAULT_CLUSTER_SPEC, seed=3, label="two")
    assert cache_key(a) == cache_key(b)


def test_key_survives_workflow_serialize_round_trip():
    """doc -> Workflow -> doc yields the same key (no drift via rebuild)."""
    wf = montage(size=15, seed=3)
    doc = workflow_to_dict(wf)
    doc2 = workflow_to_dict(workflow_from_dict(doc))
    a = make_job(doc, DEFAULT_CLUSTER_SPEC, seed=3)
    b = make_job(doc2, DEFAULT_CLUSTER_SPEC, seed=3)
    assert cache_key(a) == cache_key(b)


# ---------------------------------------------------------------------- #
# restart stability                                                      #
# ---------------------------------------------------------------------- #

_CHILD_SCRIPT = """
from repro.experiments.common import DEFAULT_CLUSTER_SPEC, make_job
from repro.runner.hashing import cache_key
from repro.workflows.generators import montage

job = make_job(montage(size=15, seed=3), DEFAULT_CLUSTER_SPEC,
               scheduler="heft", seed=3, noise_cv=0.1)
print(cache_key(job))
"""


def test_key_is_stable_across_process_restarts():
    """A fresh interpreter derives the identical key (PYTHONHASHSEED etc.)."""
    expected = cache_key(_job())
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("PYTHONHASHSEED", None)  # let hash randomization vary freely
    out = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        capture_output=True, text=True, env=env, cwd=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ),
        check=True,
    )
    assert out.stdout.strip() == expected
