"""Tests for the analysis metrics."""

import pytest

from repro.analysis.metrics import (
    average_utilization,
    critical_path_best_time,
    efficiency,
    per_class_utilization,
    schedule_length_ratio,
    serial_time,
    speedup,
)
from repro.platform import presets
from repro.schedulers.base import SchedulingContext
from repro.schedulers.heft import HeftScheduler
from repro.workflows.generators import montage


@pytest.fixture(scope="module")
def setting():
    wf = montage(n_images=6, seed=2)
    cluster = presets.hybrid_cluster(nodes=2, cores_per_node=2)
    ctx = SchedulingContext(wf, cluster)
    return wf, cluster, ctx


class TestCriticalPath:
    def test_positive_and_leq_serial(self, setting):
        wf, cluster, ctx = setting
        cp = critical_path_best_time(ctx)
        assert 0 < cp <= serial_time(wf, cluster, cpu_only=False) + 1e-9

    def test_slr_of_schedule_geq_one(self, setting):
        wf, _cluster, ctx = setting
        schedule = HeftScheduler().schedule(ctx)
        assert schedule_length_ratio(schedule.makespan, ctx) >= 1.0

    def test_slr_zero_makespan(self, setting):
        _wf, _cluster, ctx = setting
        assert schedule_length_ratio(0.0, ctx) == 0.0


class TestSerialAndSpeedup:
    def test_serial_time_cpu_only_geq_best(self, setting):
        wf, cluster, _ctx = setting
        assert serial_time(wf, cluster, cpu_only=True) >= serial_time(
            wf, cluster, cpu_only=False
        )

    def test_speedup_definition(self, setting):
        wf, cluster, _ctx = setting
        assert speedup(10.0, wf, cluster) == pytest.approx(
            serial_time(wf, cluster) / 10.0
        )

    def test_speedup_infinite_for_zero_makespan(self, setting):
        wf, cluster, _ctx = setting
        assert speedup(0.0, wf, cluster) == float("inf")

    def test_efficiency_is_per_device(self, setting):
        wf, cluster, _ctx = setting
        n = len(cluster.devices)
        assert efficiency(10.0, wf, cluster) == pytest.approx(
            speedup(10.0, wf, cluster) / n
        )

    def test_gpu_only_task_served_by_fallback(self):
        from repro.platform.devices import DeviceClass
        from repro.workflows.graph import Workflow
        from repro.workflows.task import DataFile, Task, cpu_task

        wf = Workflow("w")
        wf.add_file(DataFile("o", 1.0))
        wf.add_task(Task("g", 100.0,
                         affinity={DeviceClass.CPU: 0.0, DeviceClass.GPU: 10.0},
                         outputs=("o",)))
        wf.add_task(cpu_task("c", 1.0, inputs=("o",)))
        cluster = presets.hybrid_cluster(nodes=1, cores_per_node=1)
        assert serial_time(wf, cluster, cpu_only=True) > 0


class TestUtilization:
    def test_idle_cluster_zero(self, setting):
        _wf, cluster, _ctx = setting
        cluster.reset()
        assert average_utilization(cluster, 10.0) == 0.0

    def test_busy_device_counted(self, setting):
        _wf, cluster, _ctx = setting
        cluster.reset()
        cluster.devices[0].occupy(0, 0.0, 10.0)
        util = average_utilization(cluster, 10.0)
        assert util == pytest.approx(1.0 / len(cluster.devices))
        cluster.reset()

    def test_per_class_breakdown(self, setting):
        _wf, cluster, _ctx = setting
        cluster.reset()
        gpu = cluster.devices_of_class(
            __import__("repro.platform.devices", fromlist=["DeviceClass"]).DeviceClass.GPU
        )[0]
        gpu.occupy(0, 0.0, 5.0)
        per = per_class_utilization(cluster, 10.0)
        assert per["gpu"] > 0
        assert per["cpu"] == 0.0
        cluster.reset()

    def test_zero_makespan_empty(self, setting):
        _wf, cluster, _ctx = setting
        assert per_class_utilization(cluster, 0.0) == {}
