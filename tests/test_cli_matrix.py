"""Broad CLI coverage: every workflow and mode through `repro-flow run`."""

import pytest

from repro.cli import main
from repro.workflows.generators import ALL_GENERATORS


@pytest.mark.parametrize("workflow", sorted(ALL_GENERATORS))
def test_run_every_workflow(workflow, capsys):
    rc = main([
        "run", "--workflow", workflow, "--size", "15",
        "--cluster", "workstation", "--noise", "0",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "success     : 1.000" in out


@pytest.mark.parametrize("mode", ["static", "dynamic", "adaptive"])
def test_run_every_mode(mode, capsys):
    rc = main([
        "run", "--workflow", "montage", "--size", "15",
        "--cluster", "workstation", "--mode", mode,
    ])
    assert rc == 0


@pytest.mark.parametrize("cluster", ["cpu", "hybrid", "accel", "unrelated",
                                     "workstation"])
def test_run_every_fixed_size_cluster(cluster, capsys):
    rc = main([
        "run", "--workflow", "blast", "--size", "12", "--cluster", cluster,
    ])
    assert rc == 0


def test_run_breakdown_sections(capsys):
    rc = main([
        "run", "--workflow", "cybershake", "--size", "15",
        "--cluster", "workstation", "--breakdown",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "busy time by task category" in out
    assert "data movement" in out


@pytest.mark.parametrize("scheduler", ["hdws", "heft", "peft", "minmin",
                                       "annealing", "lookahead-heft",
                                       "energy-heft"])
def test_run_representative_schedulers(scheduler, capsys):
    rc = main([
        "run", "--workflow", "sipht", "--size", "12",
        "--cluster", "workstation", "--scheduler", scheduler,
    ])
    assert rc == 0
