"""Tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import EventHandle, SimulationError, Simulator


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_schedule_and_run_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 3.0

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule_at(7.5, lambda: None)
        sim.run()
        assert sim.now == 7.5

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_broken_by_priority_then_insertion(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "second", priority=1)
        sim.schedule(1.0, order.append, "first", priority=0)
        sim.schedule(1.0, order.append, "third", priority=1)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, 1)
        sim.run()
        assert fired == [1]
        assert sim.now == 0.0

    def test_callback_args_passed(self):
        sim = Simulator()
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, 2)
        sim.run()
        assert got == [(1, 2)]

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_handle_active_until_fired(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run()
        assert not handle.active

    def test_clear_cancels_everything(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.clear()
        sim.run()
        assert fired == []
        assert sim.pending == 0


class TestRunControl:
    def test_run_until_stops_before_late_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_can_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        sim.run()
        assert fired == [1, 10]

    def test_run_until_advances_clock_when_queue_empty(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_max_events_caps_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_fires_exactly_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]

    def test_step_on_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_events_fired_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        cancelled = sim.schedule(3.0, lambda: None)
        cancelled.cancel()
        sim.run()
        assert sim.events_fired == 2

    def test_pending_excludes_tombstones(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        handle = sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending == 1

    def test_run_not_reentrant(self):
        sim = Simulator()

        def naughty():
            sim.run()

        sim.schedule(1.0, naughty)
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_in_callback_leaves_engine_usable(self):
        sim = Simulator()

        def boom():
            raise ValueError("boom")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(ValueError):
            sim.run()
        # The engine is not mid-run anymore and can drain the rest.
        sim.run()
        assert sim.now == 2.0


class TestDeterminism:
    def test_identical_runs_produce_identical_orders(self):
        def run_once():
            sim = Simulator()
            order = []
            for i in range(50):
                sim.schedule((i * 7) % 13 + 0.5, order.append, i)
            sim.run()
            return order

        assert run_once() == run_once()


class TestLifecycleEdgeCases:
    """Handle-state races and mid-run boundaries for the event kernel."""

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.schedule(2.0, fired.append, "y")
        sim.run(max_events=1)
        assert fired == ["x"]
        # Stale cancel from a caller holding the old handle: must not
        # decrement the live count or resurrect anything.
        handle.cancel()
        assert sim.pending == 1
        assert sim.events_fired == 1
        sim.run()
        assert fired == ["x", "y"]
        assert sim.events_fired == 2

    def test_cancel_from_callback_racing_same_timestamp(self):
        # A callback cancels two siblings at the *same* instant: one that
        # already fired (must be a no-op) and one still pending (must be
        # suppressed).  Priorities order the burst: first(0), racer(1),
        # later(2).
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, fired.append, "first", priority=0)
        later = sim.schedule(1.0, fired.append, "later", priority=2)

        def racer():
            fired.append("racer")
            first.cancel()   # already fired: no-op
            later.cancel()   # still pending: must suppress it

        sim.schedule(1.0, racer, priority=1)
        sim.run()
        assert fired == ["first", "racer"]
        assert sim.pending == 0
        assert sim.events_fired == 2

    def test_max_events_stopping_mid_timestamp_resumes_in_order(self):
        sim = Simulator()
        fired = []
        for i in range(4):
            sim.schedule(5.0, fired.append, i)
        sim.run(max_events=2)
        # Stopped halfway through the t=5 burst: clock sits at 5, the
        # remaining same-time events are intact and fire in seq order.
        assert fired == [0, 1]
        assert sim.now == 5.0
        assert sim.pending == 2
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 5.0

    def test_clear_after_partial_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        sim.schedule(3.0, fired.append, 3)
        sim.run(max_events=1)
        sim.clear()
        assert sim.pending == 0
        assert sim.now == 1.0  # clear never touches the clock
        sim.run()
        assert fired == [1]
        # The engine is still usable after a clear.
        sim.schedule(1.0, fired.append, 4)
        sim.run()
        assert fired == [1, 4]
        assert sim.now == 2.0


class TestCancelledHeapEntries:
    """Regression: tombstones must not distort pending or run(until)."""

    def test_mass_cancel_keeps_pending_exact(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
        for h in handles[::2]:
            h.cancel()
        # Tombstones may linger in the heap; the count must not see them.
        assert sim.pending == 100
        sim.run()
        assert sim.pending == 0
        assert sim.events_fired == 100

    def test_cancelled_head_does_not_block_until_advance(self):
        # A cancelled event *beyond* `until` used to be counted as pending,
        # which suppressed the final clock advance to `until`.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        late = sim.schedule(100.0, fired.append, 100)
        late.cancel()
        assert sim.run(until=10.0) == 10.0
        assert fired == [1]
        assert sim.now == 10.0

    def test_all_cancelled_queue_still_advances_to_until(self):
        sim = Simulator()
        for h in [sim.schedule(float(i + 1), lambda: None) for i in range(5)]:
            h.cancel()
        assert sim.pending == 0
        assert sim.run(until=7.5) == 7.5

    def test_compaction_preserves_order_and_counts(self):
        sim = Simulator()
        fired = []
        handles = [sim.schedule(float(i + 1), fired.append, i) for i in range(256)]
        # Cancel enough to trigger the tombstone compaction threshold.
        for h in handles[:200]:
            h.cancel()
        assert sim.pending == 56
        sim.run()
        assert fired == list(range(200, 256))
        assert sim.events_fired == 56
