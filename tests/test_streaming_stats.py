"""Streaming aggregators agree with their batch counterparts."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.stats import (
    StreamingGeomean,
    StreamingSummary,
    geometric_mean,
    summarize,
)

REL = 1e-12


def _series(n: int, seed: int, lo: float = 0.1, hi: float = 100.0):
    rng = random.Random(seed)
    return [rng.uniform(lo, hi) for _ in range(n)]


@pytest.mark.parametrize("n,seed", [(2, 0), (7, 1), (100, 2), (1000, 3)])
def test_streaming_summary_matches_summarize(n, seed):
    """Welford agrees with the two-pass numpy summary to 1e-12 relative."""
    values = _series(n, seed)
    batch = summarize(values)
    stream = StreamingSummary()
    stream.extend(values)
    got = stream.result()
    assert got.n == batch.n
    assert got.mean == pytest.approx(batch.mean, rel=REL)
    assert got.std == pytest.approx(batch.std, rel=REL, abs=REL)
    assert got.ci95 == pytest.approx(batch.ci95, rel=REL, abs=REL)
    assert got.minimum == batch.minimum
    assert got.maximum == batch.maximum


def test_streaming_summary_single_element():
    """One sample: zero spread, value everywhere — exactly like summarize."""
    stream = StreamingSummary()
    stream.add(3.25)
    got = stream.result()
    batch = summarize([3.25])
    assert got == batch
    assert got.std == 0.0 and got.ci95 == 0.0
    assert got.minimum == got.maximum == got.mean == 3.25


def test_streaming_summary_constant_series():
    """A constant series must not round std below zero (sqrt domain)."""
    stream = StreamingSummary()
    stream.extend([0.1] * 1000)
    got = stream.result()
    batch = summarize([0.1] * 1000)
    assert got.mean == pytest.approx(batch.mean, rel=REL)
    assert got.std == pytest.approx(0.0, abs=1e-12)
    assert got.minimum == got.maximum == 0.1


def test_streaming_summary_empty_raises():
    with pytest.raises(ValueError):
        StreamingSummary().result()


def test_streaming_summary_order_insensitive_to_tolerance():
    """Completion-order feeds agree with submission order to tolerance."""
    values = _series(500, seed=7)
    fwd, rev = StreamingSummary(), StreamingSummary()
    fwd.extend(values)
    rev.extend(reversed(values))
    assert fwd.result().mean == pytest.approx(rev.result().mean, rel=REL)
    assert fwd.result().std == pytest.approx(rev.result().std, rel=REL)


@pytest.mark.parametrize("n,seed", [(1, 4), (13, 5), (1000, 6)])
def test_streaming_geomean_matches_batch(n, seed):
    values = _series(n, seed)
    stream = StreamingGeomean()
    stream.extend(values)
    assert stream.result() == pytest.approx(geometric_mean(values), rel=REL)


def test_streaming_geomean_constant_series():
    stream = StreamingGeomean()
    stream.extend([2.5] * 64)
    assert stream.result() == pytest.approx(2.5, rel=REL)


def test_streaming_geomean_rejects_nonpositive():
    stream = StreamingGeomean()
    with pytest.raises(ValueError):
        stream.add(0.0)
    with pytest.raises(ValueError):
        stream.add(-1.0)


def test_streaming_geomean_empty_raises():
    with pytest.raises(ValueError):
        StreamingGeomean().result()


def test_streaming_memory_is_constant():
    """The accumulators hold a fixed set of slots, never the series."""
    assert not hasattr(StreamingSummary(), "__dict__")
    assert not hasattr(StreamingGeomean(), "__dict__")
    assert math.isinf(StreamingSummary().minimum)
