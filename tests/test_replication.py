"""Tests for hot task replication (first-of-k-finishers recovery)."""

import pytest

from repro import run_workflow
from repro.faults.models import FaultModel
from repro.faults.recovery import RecoveryPolicy
from repro.platform import presets
from repro.workflows.generators import cybershake, montage


@pytest.fixture
def faulty_setup():
    wf = cybershake(n_variations=6, seed=1).scaled(3.0)
    cluster = presets.hybrid_cluster(nodes=4)
    return wf, cluster


class TestReplication:
    def test_completes_without_faults(self):
        wf = montage(n_images=6, seed=1)
        cluster = presets.hybrid_cluster(nodes=4)
        result = run_workflow(
            wf, cluster, seed=1,
            recovery=RecoveryPolicy.replicated(2, retries=5),
        )
        assert result.success
        # Replicas were launched and the losers preempted.
        assert result.execution.preemptions > 0

    def test_clones_bounded_by_policy(self):
        wf = montage(n_images=6, seed=1)
        cluster = presets.hybrid_cluster(nodes=4)
        result = run_workflow(
            wf, cluster, seed=1,
            recovery=RecoveryPolicy.replicated(3, retries=5),
        )
        for rec in result.execution.records.values():
            # one attempt each, at most 3 clones per attempt
            assert rec.clones_launched <= 3 * rec.attempts

    def test_replication_reduces_retries_under_faults(self, faulty_setup):
        wf, cluster = faulty_setup
        fm = FaultModel(task_fault_rate=0.3)
        plain = run_workflow(
            wf, cluster, seed=3, fault_model=fm,
            recovery=RecoveryPolicy.retry(40),
        )
        replicated = run_workflow(
            wf, cluster, seed=3, fault_model=fm,
            recovery=RecoveryPolicy.replicated(3, retries=40),
        )
        assert plain.success and replicated.success
        assert replicated.execution.retries < plain.execution.retries

    def test_replication_costs_energy(self, faulty_setup):
        wf, cluster = faulty_setup
        plain = run_workflow(
            wf, cluster, seed=3, recovery=RecoveryPolicy.retry(5),
        )
        replicated = run_workflow(
            wf, cluster, seed=3,
            recovery=RecoveryPolicy.replicated(3, retries=5),
        )
        assert replicated.energy.total_joules > plain.energy.total_joules

    def test_single_device_cluster_degenerates_gracefully(self):
        """With one device there is nothing to replicate onto."""
        wf = montage(n_images=4, seed=1)
        cluster = presets.cpu_cluster(nodes=1, cores_per_node=1)
        result = run_workflow(
            wf, cluster, seed=1,
            recovery=RecoveryPolicy.replicated(3, retries=5),
        )
        assert result.success
        assert result.execution.preemptions == 0

    def test_outputs_registered_once(self, faulty_setup):
        wf, cluster = faulty_setup
        result = run_workflow(
            wf, cluster, seed=2,
            recovery=RecoveryPolicy.replicated(2, retries=5),
        )
        assert result.success
        finishes = result.execution.trace.of_kind("task.finish")
        finished_tasks = [r.get("task") for r in finishes]
        assert len(finished_tasks) == len(set(finished_tasks))

    def test_deterministic(self, faulty_setup):
        wf, cluster = faulty_setup
        pol = RecoveryPolicy.replicated(2, retries=10)
        fm = FaultModel(task_fault_rate=0.2)
        r1 = run_workflow(wf, cluster, seed=7, fault_model=fm, recovery=pol,
                          noise_cv=0.2)
        r2 = run_workflow(wf, cluster, seed=7, fault_model=fm, recovery=pol,
                          noise_cv=0.2)
        assert r1.makespan == r2.makespan
        assert r1.execution.preemptions == r2.execution.preemptions
