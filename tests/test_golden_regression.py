"""Golden-regression gate: pinned makespans of the suite×scheduler grid.

The fixture (``tests/golden/makespans.json``) pins the makespan of every
mainstream scheduler on every scientific suite at a small fixed size and
seed.  Any numeric drift in the scheduler stack — cost model, EFT loop,
tie-breaks, RNG plumbing — trips this test with a readable per-cell diff.

If a change is *intentional*, regenerate with::

    PYTHONPATH=src python scripts/regen_golden.py

and justify the diff in review.
"""

from __future__ import annotations

import json
import math
import os

from repro.runner.campaign import (
    GOLDEN_NOISE_CV,
    GOLDEN_SCHEDULERS,
    GOLDEN_SEED,
    GOLDEN_SIZE,
    golden_makespans,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "golden", "makespans.json")

#: Relative tolerance: generous enough for cross-platform libm wiggle in
#: the simulation layer, tight enough that any algorithmic change trips.
REL_TOL = 1e-9


def _load_fixture():
    with open(FIXTURE, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_fixture_matches_pinned_grid_constants():
    """The fixture was generated for the grid this repo currently pins."""
    doc = _load_fixture()
    assert doc["size"] == GOLDEN_SIZE
    assert doc["seed"] == GOLDEN_SEED
    assert doc["noise_cv"] == GOLDEN_NOISE_CV
    assert doc["schedulers"] == list(GOLDEN_SCHEDULERS)


def test_makespans_match_golden_fixture():
    """Every (suite, scheduler) makespan matches its pinned value."""
    expected = _load_fixture()["makespans"]
    actual = golden_makespans()

    assert sorted(actual) == sorted(expected), (
        f"suite set drifted: fixture has {sorted(expected)}, "
        f"run produced {sorted(actual)}"
    )

    diffs = []
    for suite in sorted(expected):
        assert sorted(actual[suite]) == sorted(expected[suite])
        for sched in GOLDEN_SCHEDULERS:
            want = expected[suite][sched]
            got = actual[suite][sched]
            if not math.isclose(got, want, rel_tol=REL_TOL, abs_tol=0.0):
                rel = abs(got - want) / max(abs(want), 1e-300)
                diffs.append(
                    f"  {suite:12s} {sched:8s} "
                    f"expected {want:.9f}  got {got:.9f}  (rel {rel:.2e})"
                )
    assert not diffs, (
        "golden makespans drifted ({} of {} cells):\n{}\n"
        "if intentional: PYTHONPATH=src python scripts/regen_golden.py".format(
            len(diffs),
            sum(len(v) for v in expected.values()),
            "\n".join(diffs),
        )
    )
