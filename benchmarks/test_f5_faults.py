"""F5 — fault tolerance: makespan vs transient fault rate by policy."""

from repro.experiments import run_f5


def test_f5_faults(run_experiment):
    result = run_experiment(run_f5)

    # Shape: makespan degrades with fault rate under every policy.
    for label in ("retry", "ckpt-fine", "ckpt-coarse"):
        series = result.series[f"makespan[{label}]"]
        xs = sorted(series)
        assert series[xs[-1]] >= series[xs[0]] * 0.98, label
    # Unprotected success collapses as the rate grows.
    success = result.series["success-rate[none]"]
    rates = sorted(success)
    assert success[rates[0]] == 1.0
    assert success[rates[-1]] < success[rates[0]]
    # Fine checkpointing bounds the damage best at the highest rate.
    retry = result.series["makespan[retry]"]
    fine = result.series["makespan[ckpt-fine]"]
    top = sorted(retry)[-1]
    assert fine[top] <= retry[top] * 1.10
