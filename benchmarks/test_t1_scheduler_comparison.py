"""T1 — scheduler comparison table (makespan + SLR, 5 suites)."""

from repro.experiments import run_t1


def test_t1_scheduler_comparison(run_experiment):
    result = run_experiment(run_t1)
    geo = result.notes["geomean_makespan"]

    # Shape: HDWS is at (or within 10% of) the front of the field.
    assert geo["hdws"] <= min(geo.values()) * 1.10
    # Informed list schedulers beat the naive mappers by a wide margin.
    assert geo["hdws"] < geo["random"] * 0.5
    assert geo["heft"] < geo["random"] * 0.5
    # The batch heuristics sit between the two camps.
    assert geo["hdws"] <= geo["minmin"] * 1.05
    assert geo["minmin"] < geo["random"]
