"""F6 — data-staging traffic by scheduler (locality effect)."""

from repro.experiments import run_f6


def test_f6_data_traffic(run_experiment):
    result = run_experiment(run_f6)
    traffic = result.tables["data moved (MB)"]
    makespan = result.tables["makespan (s)"]

    for wf in traffic.rows:
        row = traffic.row_values(wf)
        # Shape: the locality tie-break never increases traffic...
        assert row["hdws"] <= row["hdws-noloc"] * 1.001
        # ...and the blind batch heuristic moves at least as much.
        assert row["hdws"] <= row["minmin"] * 1.05
    # Locality is makespan-neutral within its tolerance window.
    for wf in makespan.rows:
        row = makespan.row_values(wf)
        assert row["hdws"] <= row["hdws-noloc"] * 1.25
    # On Montage (many shareable intermediates) the saving is real.
    assert result.notes["traffic_ratio_noloc_vs_loc"]["montage"] > 1.05
