"""T2 — heterogeneity benefit ladder (CPU -> +GPU -> +GPU+FPGA)."""

from repro.experiments import run_t2


def test_t2_heterogeneity_benefit(run_experiment):
    result = run_experiment(run_t2)
    speedups = result.tables["speedup vs cpu-only"]

    # Shape: accelerators help every suite, several-fold in geomean.
    assert result.notes["gpu_speedup_geomean"] > 2.0
    for wf in ("montage", "cybershake", "ligo"):
        assert speedups.get(wf, "cpu+gpu") > 1.5
    # The second accelerator class never hurts and helps where
    # FPGA-preferring kernels exist (SIPHT's BLAST family).
    for wf in speedups.rows:
        if wf == "geo-mean":
            continue
        assert speedups.get(wf, "cpu+gpu+fpga") >= speedups.get(wf, "cpu+gpu") * 0.98
    assert (
        speedups.get("sipht", "cpu+gpu+fpga")
        >= speedups.get("sipht", "cpu+gpu")
    )
