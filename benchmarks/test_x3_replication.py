"""X3 (extension) — replication vs retry vs checkpoint bench."""

from repro.experiments import run_x3


def test_x3_replication(run_experiment):
    result = run_experiment(run_x3)
    table = result.tables["recovery mechanisms @ rate 0.2"]

    # Shape: every mechanism completes the run...
    assert all(
        table.get(label, "success") == 1.0 for label in table.rows
    )
    # ...replication buys retry-avoidance (fewer re-executions)...
    assert result.notes["retry_reduction_2x"] > 1.2
    assert table.get("replicate-3x", "retries") <= table.get(
        "replicate-2x", "retries"
    )
    # ...and pays for it in preempted clones and energy.
    assert table.get("replicate-2x", "preemptions") > 0
    assert table.get("replicate-2x", "energy (J)") > table.get(
        "retry", "energy (J)"
    ) * 0.95
