"""T3 — energy comparison (HEFT vs HDWS vs energy-aware)."""

from repro.experiments import run_t3


def test_t3_energy(run_experiment):
    result = run_experiment(run_t3)
    geo_e = result.notes["geomean_energy"]
    geo_m = result.notes["geomean_makespan"]

    # Shape: stronger energy weighting saves more energy...
    assert geo_e["ea-0.3"] < geo_e["ea-0.7"] < geo_e["heft"]
    # ...at growing makespan cost.
    assert geo_m["ea-0.3"] > geo_m["ea-0.7"] >= geo_m["heft"] * 0.95
    # The energy-aware point saves a real amount, not noise.
    assert geo_e["ea-0.3"] < geo_e["heft"] * 0.95
