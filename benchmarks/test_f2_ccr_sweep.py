"""F2 — makespan vs communication-to-computation ratio."""

from repro.experiments import run_f2


def test_f2_ccr_sweep(run_experiment):
    result = run_experiment(run_f2)

    # Shape: every scheduler slows down as CCR grows...
    for sched in ("hdws", "heft", "minmin"):
        series = result.series[f"makespan[{sched}]"]
        xs = sorted(series)
        assert series[xs[-1]] > series[xs[0]]
    # ...and the communication-blind mappers degrade relative to HDWS.
    gaps = result.notes["max_gap_vs_hdws"]
    assert gaps["olb"] > 1.2
    assert gaps["mct"] >= 1.0
    # HDWS stays competitive with HEFT across the sweep.
    vs_heft = result.series["vs-hdws[heft]"]
    assert all(v >= 0.85 for v in vs_heft.values())
