"""F4 — robustness to runtime-estimate error (static/dynamic/adaptive)."""

from repro.experiments import run_f4


def test_f4_estimate_error(run_experiment):
    result = run_experiment(run_f4)
    deg = result.notes["degradation_last_vs_first"]

    # Shape: the static plan inherits every profiling mistake; the dynamic
    # JIT mapper barely cares; adaptive sits at or below static.
    assert deg["static"] > 1.05
    assert deg["dynamic"] < deg["static"]
    assert deg["adaptive"] <= deg["static"] * 1.02
    # At zero error the planned modes beat (or match) pure dynamic.
    static0 = result.series["makespan[static]"]
    dynamic0 = result.series["makespan[dynamic]"]
    x0 = sorted(static0)[0]
    assert static0[x0] <= dynamic0[x0] * 1.05
