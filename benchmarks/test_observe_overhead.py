"""Observability overhead bounds (the ISSUE's t5-style benchmark).

Three configurations of the same fixed executor run:

* ``bare``     — tracing disabled entirely (the recorder early-out path);
* ``traced``   — default tracing on, metrics off;
* ``observed`` — tracing on + metrics registry + live span building.

The contract: observation must be cheap.  Disabled instrumentation costs
<= 5% over bare, and fully enabled instrumentation costs <= 15% over the
traced default.  Wall times are min-of-N to shed scheduler noise; the
bounds carry a small absolute floor so sub-millisecond jitter on short
runs cannot flake the suite.
"""

import time

import numpy as np

from repro.core.executor import WorkflowExecutor
from repro.core.policies import StaticPolicy
from repro.observe import MetricsRegistry, TraceSpanBuilder
from repro.platform import presets
from repro.schedulers import REGISTRY
from repro.schedulers.base import SchedulingContext
from repro.sim.trace import TraceRecorder
from repro.workflows.generators import montage

ROUNDS = 5
SIZE = 150
#: Absolute slack (seconds) added to each relative bound: timer noise on
#: a ~100 ms run is a few ms regardless of what the code does.
FLOOR_S = 0.015


def _wall(trace_enabled=True, metrics=False, spans=False) -> float:
    """Min-of-ROUNDS wall seconds for the fixed workload."""
    best = float("inf")
    for _ in range(ROUNDS):
        wf = montage(size=SIZE, seed=13)
        cluster = presets.hybrid_cluster(nodes=2, cores_per_node=4)
        cluster.execution_model.noise_cv = 0.1
        plan = REGISTRY["heft"]().schedule(
            SchedulingContext(
                wf, cluster, rng=np.random.default_rng(13 + 7919)
            )
        )
        trace = TraceRecorder(enabled=trace_enabled)
        if spans:
            TraceSpanBuilder().attach(trace)
        executor = WorkflowExecutor(
            wf, cluster, StaticPolicy(plan), seed=13, trace=trace,
            sanitize=False,
            metrics=MetricsRegistry() if metrics else False,
        )
        t0 = time.perf_counter()
        result = executor.run()
        elapsed = time.perf_counter() - t0
        assert result.success
        best = min(best, elapsed)
    return best


def test_disabled_observation_is_nearly_free():
    bare = _wall(trace_enabled=False)
    traced = _wall(trace_enabled=True)
    assert traced <= bare * 1.05 + FLOOR_S, (
        f"default tracing costs {traced / bare - 1:.1%} over bare "
        f"(bare={bare:.4f}s traced={traced:.4f}s); budget is 5%"
    )


def test_enabled_observation_within_budget():
    traced = _wall(trace_enabled=True)
    observed = _wall(trace_enabled=True, metrics=True, spans=True)
    assert observed <= traced * 1.15 + FLOOR_S, (
        f"metrics+spans cost {observed / traced - 1:.1%} over traced "
        f"(traced={traced:.4f}s observed={observed:.4f}s); budget is 15%"
    )
