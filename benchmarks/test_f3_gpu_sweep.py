"""F3 — makespan vs GPU count (accelerator marginal utility)."""

from repro.experiments import run_f3


def test_f3_gpu_sweep(run_experiment):
    result = run_experiment(run_f3)
    marginal = result.notes["marginal_utility"]

    for wname, gains in marginal.items():
        # Shape: the first GPU buys a large factor on accelerable suites,
        # and marginal utility decays (Amdahl).
        assert gains["first_gpu"] >= gains["last_gpu"] * 0.9, wname
    # At least three of the five suites gain >2x from the first GPU.
    big_winners = [
        w for w, g in marginal.items() if g["first_gpu"] > 2.0
    ]
    assert len(big_winners) >= 3
    # Makespan is monotone non-increasing in GPU count (within noise).
    for label, series in result.series.items():
        xs = sorted(series)
        for a, b in zip(xs, xs[1:]):
            assert series[b] <= series[a] * 1.10, label
