"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's evaluation tables/figures via
its :mod:`repro.experiments` runner, prints the rows/series, and asserts
the qualitative *shape* (who wins, roughly by how much, where crossovers
fall).  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_FULL=1`` to run the experiments at full paper scale instead of
the quick CI scale.
"""

import os

import pytest


@pytest.fixture(scope="session")
def quick() -> bool:
    """False when REPRO_FULL=1 requests full-scale experiment runs."""
    return os.environ.get("REPRO_FULL", "0") != "1"


@pytest.fixture
def run_experiment(benchmark, quick):
    """Run an experiment under pytest-benchmark timing (one round)."""

    def _run(runner, **kwargs):
        kwargs.setdefault("quick", quick)
        kwargs.setdefault("seed", 0)
        result = benchmark.pedantic(
            lambda: runner(**kwargs), rounds=1, iterations=1,
        )
        print()
        print(result.render())
        return result

    return _run
