"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's evaluation tables/figures via
its :mod:`repro.experiments` runner, prints the rows/series, and asserts
the qualitative *shape* (who wins, roughly by how much, where crossovers
fall).  Run with::

    pytest benchmarks/ --benchmark-only

Set ``REPRO_FULL=1`` to run the experiments at full paper scale instead of
the quick CI scale.  ``REPRO_JOBS=N`` fans simulation cells out over N
worker processes and ``REPRO_CACHE_DIR=PATH`` memoizes completed cells on
disk (see ``repro.runner``); both default to serial/no-cache.
"""

import os

import pytest

from repro.runner import runner_from_env, use_runner


@pytest.fixture(scope="session")
def quick() -> bool:
    """False when REPRO_FULL=1 requests full-scale experiment runs."""
    return os.environ.get("REPRO_FULL", "0") != "1"


@pytest.fixture(scope="session")
def campaign_runner():
    """One REPRO_JOBS/REPRO_CACHE_DIR-configured runner for the session."""
    return runner_from_env()


@pytest.fixture
def run_experiment(benchmark, quick, campaign_runner):
    """Run an experiment under pytest-benchmark timing (one round)."""

    def _run(runner, **kwargs):
        kwargs.setdefault("quick", quick)
        kwargs.setdefault("seed", 0)
        with use_runner(campaign_runner):
            result = benchmark.pedantic(
                lambda: runner(**kwargs), rounds=1, iterations=1,
            )
        print()
        print(result.render())
        return result

    return _run
