"""X1 (extension) — ensemble sharing disciplines.

Not a table from the paper's evaluation; an ablation-style extension bench
for the ensemble subsystem: three sharing disciplines on a three-member
campaign, asserting the throughput/latency trade-off shape.
"""

from repro.core.ensemble import EnsembleMember, EnsembleRunner
from repro.core.orchestrator import RunConfig
from repro.platform import presets
from repro.workflows.generators import blast, montage, sipht


def test_x1_ensemble_disciplines(benchmark, quick):
    size = 25 if quick else 60

    def run():
        members = [
            EnsembleMember("mosaic", montage(size=size, seed=1), priority=1.0),
            EnsembleMember("search", blast(size=size, seed=2), priority=3.0),
            EnsembleMember("srna", sipht(size=size, seed=3), priority=2.0),
        ]
        runner = EnsembleRunner(
            presets.hybrid_cluster(nodes=4), RunConfig(seed=1, noise_cv=0.1)
        )
        return members, {
            d: runner.run(members, discipline=d)
            for d in ("sequential", "priority", "shared")
        }

    members, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for d, res in results.items():
        print(f"{d:10s} makespan={res.makespan:8.2f} "
              f"mean_slowdown={res.mean_slowdown:6.2f} "
              f"throughput={res.throughput():.3f}")

    # Shape: space sharing wins makespan/throughput; priority gets the
    # urgent member done first; everything completes.
    assert all(res.success for res in results.values())
    assert results["shared"].makespan < results["sequential"].makespan
    assert (
        results["priority"].member_finish["search"]
        < results["sequential"].member_finish["search"]
    )
    assert (
        results["shared"].throughput()
        > results["sequential"].throughput()
    )
