"""F1 — speedup vs cluster size (Montage, HDWS/HEFT/Min-Min)."""

from repro.experiments import run_f1


def test_f1_scalability_speedup(run_experiment):
    result = run_experiment(run_f1)
    hdws = result.series["speedup[hdws]"]
    xs = sorted(hdws)

    # Shape: speedup grows with nodes and eventually saturates
    # (diminishing returns per doubling).
    assert hdws[xs[-1]] > hdws[xs[0]]
    gains = [hdws[b] / hdws[a] for a, b in zip(xs, xs[1:])]
    assert gains[-1] < gains[0] + 0.5  # early doublings pay most
    # HDWS saturates at least as high as Min-Min.
    sat = result.notes["saturation"]
    assert sat["hdws"] >= sat["minmin"] * 0.9
