"""T4 — ablation of the four HDWS mechanisms."""

from repro.experiments import run_t4


def test_t4_ablation(run_experiment):
    result = run_experiment(run_t4)
    vs_full = result.notes["geomean_vs_full"]
    traffic = result.notes["traffic_geomean"]

    # Shape: the full configuration is at worst marginally behind any
    # single ablation (no mechanism is a net loss)...
    for label, ratio in vs_full.items():
        assert ratio >= 0.97, f"{label} beats full by too much ({ratio})"
    # ...and removing everything never helps beyond runtime noise (the
    # 0.1-CV noise floor on a single run is a few tenths of a percent).
    assert vs_full["none"] >= 0.99
    # The locality tie-break exists for traffic: removing it moves more
    # bytes.
    assert traffic["-locality"] > traffic["full"] * 1.02
