"""T5 — scheduling overhead vs DAG size (algorithm wall-clock)."""

from repro.experiments import run_t5


def test_t5_overhead(run_experiment):
    result = run_experiment(run_t5)
    table = result.tables["scheduling time (s)"]
    growth = result.notes["growth_first_to_last"]

    # Shape: every algorithm's cost grows with DAG size.
    assert all(g > 1.0 for g in growth.values())
    # The immediate-mode mapper stays the cheapest at the largest size.
    biggest = table.rows[-1]
    row = table.row_values(biggest)
    assert row["mct"] <= row["heft"] * 1.5
    assert row["mct"] <= row["peft"]
    # Everything schedules a mid-size DAG in interactive time.
    assert all(v < 60.0 for v in row.values())
