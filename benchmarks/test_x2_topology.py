"""X2 (extension) — interconnect-topology sensitivity bench."""

from repro.experiments import run_x2


def test_x2_topology_sensitivity(run_experiment):
    result = run_experiment(run_x2)
    makespan = result.tables["makespan (s)"]

    # Shape: the data-heaviest suite is fabric-sensitive, the
    # compute-chain suite barely notices.
    spread = result.notes["makespan_spread"]
    assert spread["cybershake"] > 1.1
    assert spread["epigenomics"] < 1.2
    # The tapered fat-tree is the costliest fabric for bulk data movement.
    row = makespan.row_values("cybershake")
    assert row["fat-tree"] >= max(
        row["uniform"], row["dragonfly"]
    ) * 0.99
