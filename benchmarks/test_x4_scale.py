"""X4 (extension) — streaming campaign scale bench."""

from repro.experiments import run_x4


def test_x4_streaming_scale(run_experiment):
    result = run_experiment(run_x4)
    notes = result.notes

    # Every cell completed and streamed through the aggregators.
    assert notes["cells"] >= 512 or notes["cells"] == notes["simulated"]
    assert notes["success_rate"] == 1.0
    assert notes["makespan"]["n"] == notes["cells"]
    # Aggregates are physically sensible.
    assert 0 < notes["makespan"]["min"] <= notes["makespan"]["mean"]
    assert notes["makespan"]["mean"] <= notes["makespan"]["max"]
    assert 0 < notes["makespan_geomean"] <= notes["makespan"]["mean"]
    assert notes["energy_j_mean"] > 0
    # The streaming path keeps memory flat: even the full 10^5-cell run
    # must stay far below a record-list's footprint.
    assert notes["peak_rss_mb"] < 1536
    assert notes["cells_per_sec"] > 0
