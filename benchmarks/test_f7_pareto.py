"""F7 — energy/makespan Pareto front (alpha sweep)."""

from repro.experiments import run_f7


def test_f7_pareto(run_experiment):
    result = run_experiment(run_f7)
    makespan = result.series["makespan"]
    energy = result.series["energy_j"]
    alphas = sorted(makespan)

    # Shape: the endpoints bracket the front.
    assert makespan[alphas[-1]] <= makespan[alphas[0]]
    assert energy[alphas[0]] <= energy[alphas[-1]]
    # The front is a genuine trade-off: the greenest point saves >5%
    # energy and the fastest point saves >5% makespan vs the other end.
    assert energy[alphas[0]] < energy[alphas[-1]] * 0.95
    assert makespan[alphas[-1]] < makespan[alphas[0]] * 0.95
    assert result.notes["greenest_alpha"] == alphas[0]
